//! The byte-level layout of the `aprof-wire` format (version 1) and the
//! chunk payload codec shared by [`WireWriter`](crate::WireWriter) and
//! [`WireReader`](crate::WireReader).
//!
//! ```text
//! File   := Header Chunk* Index Footer
//! Header := MAGIC(8)="aprwire1" VERSION(u32 LE) PAYLOAD_LEN(u32 LE)
//!           HeaderPayload PAYLOAD_CRC32(u32 LE)
//! HeaderPayload := routine_count(varint) { name_len(varint) name(bytes) }*
//! Chunk  := 'C' EVENT_COUNT(u32 LE) PAYLOAD_LEN(u32 LE)
//!           PAYLOAD_CRC32(u32 LE) Payload
//! Index  := 'I' CHUNK_COUNT(u32 LE)
//!           { OFFSET(u64 LE) PAYLOAD_LEN(u32 LE) EVENT_COUNT(u32 LE)
//!             PAYLOAD_CRC32(u32 LE) }*
//!           TOTAL_EVENTS(u64 LE) THREAD_COUNT(u32 LE) INDEX_CRC32(u32 LE)
//! Footer := INDEX_OFFSET(u64 LE) MAGIC(8)="aprwidx1"
//! ```
//!
//! Chunk payloads are self-contained: the delta state (previous thread,
//! address, routine) resets at every chunk boundary, so a chunk can be
//! decoded in isolation — the basis of both corrupt-chunk skipping and
//! parallel decode. Each event is one tag byte (low 4 bits: event kind,
//! bit 4: "explicit thread id follows") plus varint operands; addresses and
//! routine ids are zigzag deltas against the previous value in the chunk.

use crate::error::WireError;
use crate::varint;
use aprof_trace::{Addr, Event, RoutineId, ThreadId};

/// Leading file magic (8 bytes).
pub const MAGIC: &[u8; 8] = b"aprwire1";

/// Trailing footer magic (8 bytes).
pub const FOOTER_MAGIC: &[u8; 8] = b"aprwidx1";

/// Format version written by this build.
pub const VERSION: u32 = 1;

/// Record tag starting every chunk.
pub const CHUNK_TAG: u8 = b'C';

/// Record tag starting the trailing index.
pub const INDEX_TAG: u8 = b'I';

/// Hard ceiling on one chunk's payload, protecting readers from corrupt
/// length fields demanding absurd allocations.
pub const MAX_CHUNK_BYTES: u64 = 64 << 20;

/// Hard ceiling on the header payload (routine tables are small).
pub const MAX_HEADER_BYTES: u64 = 16 << 20;

/// Worst-case encoded size of one event: tag + thread varint + operand
/// varint. A chunk is flushed once its payload reaches the configured
/// target, so payloads never exceed `target - 1 + MAX_EVENT_BYTES`.
pub const MAX_EVENT_BYTES: usize = 1 + 5 + varint::MAX_VARINT_BYTES;

/// Bytes of fixed chunk framing preceding each payload (tag + count + len +
/// crc).
pub const CHUNK_FRAMING_BYTES: u64 = 13;

const KIND_CALL: u8 = 0;
const KIND_RETURN: u8 = 1;
const KIND_READ: u8 = 2;
const KIND_WRITE: u8 = 3;
const KIND_KERNEL_READ: u8 = 4;
const KIND_KERNEL_WRITE: u8 = 5;
const KIND_BASIC_BLOCK: u8 = 6;
const KIND_THREAD_SWITCH: u8 = 7;
const KIND_THREAD_START: u8 = 8;
const KIND_THREAD_EXIT: u8 = 9;

const FLAG_THREAD: u8 = 0x10;
const TAG_RESERVED_MASK: u8 = 0xE0;

/// Per-chunk delta-coding state; reset at every chunk boundary so chunks
/// decode independently.
#[derive(Debug, Clone, Default)]
pub struct DeltaState {
    thread: Option<ThreadId>,
    addr: u64,
    routine: u64,
}

impl DeltaState {
    /// Fresh state, as at the start of a chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one event onto `buf`.
    pub fn encode(&mut self, buf: &mut Vec<u8>, thread: ThreadId, event: Event) {
        let (kind, operand) = match event {
            Event::Call { routine } => (KIND_CALL, Some(self.routine_delta(routine))),
            Event::Return { routine } => (KIND_RETURN, Some(self.routine_delta(routine))),
            Event::Read { addr } => (KIND_READ, Some(self.addr_delta(addr))),
            Event::Write { addr } => (KIND_WRITE, Some(self.addr_delta(addr))),
            Event::KernelRead { addr } => (KIND_KERNEL_READ, Some(self.addr_delta(addr))),
            Event::KernelWrite { addr } => (KIND_KERNEL_WRITE, Some(self.addr_delta(addr))),
            Event::BasicBlock { cost } => (KIND_BASIC_BLOCK, Some(cost)),
            Event::ThreadSwitch => (KIND_THREAD_SWITCH, None),
            Event::ThreadStart => (KIND_THREAD_START, None),
            Event::ThreadExit => (KIND_THREAD_EXIT, None),
        };
        let explicit_thread = self.thread != Some(thread);
        let tag = kind | if explicit_thread { FLAG_THREAD } else { 0 };
        buf.push(tag);
        if explicit_thread {
            varint::write_u64(buf, thread.index() as u64);
            self.thread = Some(thread);
        }
        if let Some(operand) = operand {
            varint::write_u64(buf, operand);
        }
    }

    /// Decodes one event from `buf` at `*pos`, advancing `*pos`.
    ///
    /// Errors are reported as plain strings; the caller folds them into a
    /// chunk-level [`WireError::ChunkCorrupt`].
    pub fn decode(
        &mut self,
        buf: &[u8],
        pos: &mut usize,
    ) -> Result<(ThreadId, Event), String> {
        let tag = *buf.get(*pos).ok_or("event tag past payload end")?;
        *pos += 1;
        if tag & TAG_RESERVED_MASK != 0 {
            return Err(format!("reserved bits set in event tag 0x{tag:02x}"));
        }
        if tag & FLAG_THREAD != 0 {
            let raw = varint::read_u64_fast(buf, pos).ok_or("bad thread id varint")?;
            let raw = u32::try_from(raw).map_err(|_| "thread id exceeds u32".to_owned())?;
            self.thread = Some(ThreadId::new(raw));
        }
        let thread = self
            .thread
            .ok_or("chunk's first event carries no thread id")?;
        let mut operand = || varint::read_u64_fast(buf, pos).ok_or("bad operand varint");
        let event = match tag & 0x0f {
            KIND_CALL => Event::Call { routine: self.routine_undelta(operand()?)? },
            KIND_RETURN => Event::Return { routine: self.routine_undelta(operand()?)? },
            KIND_READ => Event::Read { addr: self.addr_undelta(operand()?) },
            KIND_WRITE => Event::Write { addr: self.addr_undelta(operand()?) },
            KIND_KERNEL_READ => Event::KernelRead { addr: self.addr_undelta(operand()?) },
            KIND_KERNEL_WRITE => Event::KernelWrite { addr: self.addr_undelta(operand()?) },
            KIND_BASIC_BLOCK => Event::BasicBlock { cost: operand()? },
            KIND_THREAD_SWITCH => Event::ThreadSwitch,
            KIND_THREAD_START => Event::ThreadStart,
            KIND_THREAD_EXIT => Event::ThreadExit,
            other => return Err(format!("unknown event kind {other}")),
        };
        Ok((thread, event))
    }

    fn addr_delta(&mut self, addr: Addr) -> u64 {
        let delta = varint::zigzag(addr.raw().wrapping_sub(self.addr) as i64);
        self.addr = addr.raw();
        delta
    }

    fn addr_undelta(&mut self, raw: u64) -> Addr {
        self.addr = self.addr.wrapping_add(varint::unzigzag(raw) as u64);
        Addr::new(self.addr)
    }

    fn routine_delta(&mut self, routine: RoutineId) -> u64 {
        let delta = varint::zigzag((routine.index() as u64).wrapping_sub(self.routine) as i64);
        self.routine = routine.index() as u64;
        delta
    }

    fn routine_undelta(&mut self, raw: u64) -> Result<RoutineId, String> {
        self.routine = self.routine.wrapping_add(varint::unzigzag(raw) as u64);
        let id = u32::try_from(self.routine).map_err(|_| "routine id exceeds u32".to_owned())?;
        Ok(RoutineId::new(id))
    }
}

/// Decodes a full chunk payload into `out` (cleared first), verifying the
/// event count declared by the framing.
///
/// Used by the sequential reader and directly by parallel chunk decoders
/// working off the [index](crate::WireIndex).
///
/// # Errors
///
/// Returns [`WireError::ChunkCorrupt`] when the payload is structurally
/// invalid or decodes to a different number of events than `claimed`.
pub fn decode_chunk_into(
    index: u32,
    payload: &[u8],
    claimed: u32,
    out: &mut Vec<(ThreadId, Event)>,
) -> Result<(), WireError> {
    out.clear();
    // Pre-size for the claimed count, capped by the payload length (every
    // event costs at least its tag byte) so a corrupt count field cannot
    // demand an absurd allocation.
    out.reserve((claimed as usize).min(payload.len()));
    let corrupt = |reason: String| WireError::ChunkCorrupt { index, reason };
    let mut state = DeltaState::new();
    let mut pos = 0;
    while pos < payload.len() {
        let (thread, event) = state.decode(payload, &mut pos).map_err(corrupt)?;
        out.push((thread, event));
        if out.len() > claimed as usize {
            return Err(corrupt(format!("payload holds more than the {claimed} claimed events")));
        }
    }
    if out.len() != claimed as usize {
        return Err(corrupt(format!(
            "payload decoded to {} events, framing claims {claimed}",
            out.len()
        )));
    }
    Ok(())
}

/// One entry of the trailing chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk's framing tag from the start of the file.
    pub offset: u64,
    /// Payload length in bytes (framing excluded).
    pub payload_len: u32,
    /// Events encoded in the payload.
    pub events: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// The decoded trailing index: per-chunk directory plus file totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireIndex {
    /// Chunk directory in file order.
    pub entries: Vec<ChunkEntry>,
    /// Total events across all chunks.
    pub total_events: u64,
    /// Observed thread count (highest thread index + 1; 0 for empty traces).
    pub thread_count: u32,
}

impl WireIndex {
    /// Serializes the index record (tag, body, CRC) onto `buf`.
    pub(crate) fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(INDEX_TAG);
        let body_start = buf.len();
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            buf.extend_from_slice(&e.offset.to_le_bytes());
            buf.extend_from_slice(&e.payload_len.to_le_bytes());
            buf.extend_from_slice(&e.events.to_le_bytes());
            buf.extend_from_slice(&e.crc.to_le_bytes());
        }
        buf.extend_from_slice(&self.total_events.to_le_bytes());
        buf.extend_from_slice(&self.thread_count.to_le_bytes());
        let crc = crate::crc32::crc32(&buf[body_start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<(ThreadId, Event)> {
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(7));
        vec![
            (t0, Event::ThreadStart),
            (t0, Event::Call { routine: RoutineId::new(3) }),
            (t0, Event::BasicBlock { cost: 12 }),
            (t0, Event::Read { addr: Addr::new(0x1000) }),
            (t0, Event::Write { addr: Addr::new(0xfff) }),
            (t1, Event::ThreadSwitch),
            (t1, Event::KernelRead { addr: Addr::new(5) }),
            (t1, Event::KernelWrite { addr: Addr::new(u64::MAX) }),
            (t0, Event::ThreadSwitch),
            (t0, Event::Return { routine: RoutineId::new(3) }),
            (t0, Event::ThreadExit),
        ]
    }

    #[test]
    fn payload_roundtrip_covers_every_kind() {
        let events = all_events();
        let mut buf = Vec::new();
        let mut enc = DeltaState::new();
        for &(t, e) in &events {
            enc.encode(&mut buf, t, e);
        }
        let mut out = Vec::new();
        decode_chunk_into(0, &buf, events.len() as u32, &mut out).unwrap();
        assert_eq!(out, events);
    }

    #[test]
    fn same_thread_runs_omit_thread_ids() {
        let t = ThreadId::new(2);
        let mut buf = Vec::new();
        let mut enc = DeltaState::new();
        enc.encode(&mut buf, t, Event::ThreadSwitch);
        let first = buf.len();
        enc.encode(&mut buf, t, Event::ThreadSwitch);
        // First event: tag + thread varint; second: tag only.
        assert_eq!(first, 2);
        assert_eq!(buf.len() - first, 1);
    }

    #[test]
    fn delta_coding_keeps_nearby_addresses_small() {
        let t = ThreadId::MAIN;
        let mut buf = Vec::new();
        let mut enc = DeltaState::new();
        enc.encode(&mut buf, t, Event::Read { addr: Addr::new(1 << 40) });
        let first = buf.len();
        enc.encode(&mut buf, t, Event::Read { addr: Addr::new((1 << 40) + 1) });
        // Neighbouring cell: tag + 1-byte delta.
        assert_eq!(buf.len() - first, 2);
    }

    #[test]
    fn count_mismatch_is_detected() {
        let mut buf = Vec::new();
        DeltaState::new().encode(&mut buf, ThreadId::MAIN, Event::ThreadStart);
        let mut out = Vec::new();
        assert!(matches!(
            decode_chunk_into(4, &buf, 2, &mut out),
            Err(WireError::ChunkCorrupt { index: 4, .. })
        ));
        assert!(matches!(
            decode_chunk_into(4, &buf, 0, &mut out),
            Err(WireError::ChunkCorrupt { index: 4, .. })
        ));
    }

    #[test]
    fn reserved_tag_bits_are_rejected() {
        let buf = [0xE0u8];
        let mut out = Vec::new();
        assert!(decode_chunk_into(0, &buf, 1, &mut out).is_err());
    }

    #[test]
    fn missing_leading_thread_is_rejected() {
        // A valid same-thread tag with no preceding explicit thread.
        let buf = [KIND_THREAD_SWITCH];
        let mut out = Vec::new();
        assert!(decode_chunk_into(0, &buf, 1, &mut out).is_err());
    }
}
