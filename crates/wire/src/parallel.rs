//! Sharded parallel chunk decode over the trailing index.
//!
//! The chunk index makes every chunk independently decodable, but naive
//! parallelism — one thread-pool job per chunk, a fresh payload buffer per
//! job — *loses* to sequential decode on realistic traces: `BENCH_wire.json`
//! measured 0.66× of sequential at 26 KB, because pool startup and
//! per-chunk allocation dwarf the decode work. This module is the fixed
//! strategy:
//!
//! * chunks are sharded into **contiguous ranges**, one per worker, so each
//!   worker's reads stay sequential on disk;
//! * each worker opens its own reader once and reuses **one payload scratch
//!   buffer** for its whole range;
//! * traces below [`PARALLEL_MIN_BYTES`] of total payload (or a single
//!   chunk, or one worker) take a **sequential fallback** on the calling
//!   thread — no threads are spawned where parallelism cannot win.

use crate::error::WireError;
use crate::format::WireIndex;
use crate::reader::read_chunk_with;
use aprof_trace::{Event, ThreadId};
use std::io::{Read, Seek};

/// The decoded events of one chunk.
type ChunkEvents = Vec<(ThreadId, Event)>;

/// Below this many bytes of total chunk payload, [`decode_chunks`] decodes
/// sequentially on the calling thread: thread spawn plus result reassembly
/// costs more than the decode itself (the measured break-even is in the
/// hundreds of kilobytes on commodity hardware).
pub const PARALLEL_MIN_BYTES: u64 = 1 << 20;

/// Decodes every chunk of `index`, sharding contiguous chunk ranges over at
/// most `workers` threads, and returns the decoded events per chunk in
/// index order (concatenating the shards replays the trace).
///
/// `open` is called once per worker to obtain an independent seekable
/// reader over the same trace (e.g. a fresh [`Cursor`](std::io::Cursor)
/// over a shared byte slice, or a re-opened file).
///
/// Small traces fall back to sequential decode — see [`PARALLEL_MIN_BYTES`].
///
/// # Errors
///
/// The first failing chunk (in index order) surfaces its
/// [`WireError::ChunkCorrupt`] / [`WireError::IndexCorrupt`] / I/O error;
/// `open` failures propagate as-is.
pub fn decode_chunks<R, F>(
    open: F,
    index: &WireIndex,
    workers: usize,
) -> Result<Vec<Vec<(ThreadId, Event)>>, WireError>
where
    R: Read + Seek + Send,
    F: Fn() -> Result<R, WireError> + Sync,
{
    decode_chunks_with(open, index, workers, PARALLEL_MIN_BYTES)
}

/// [`decode_chunks`] with an explicit sequential-fallback threshold, for
/// tests and benchmarks that need to force one path or the other.
///
/// # Errors
///
/// As [`decode_chunks`].
pub fn decode_chunks_with<R, F>(
    open: F,
    index: &WireIndex,
    workers: usize,
    min_parallel_bytes: u64,
) -> Result<Vec<Vec<(ThreadId, Event)>>, WireError>
where
    R: Read + Seek + Send,
    F: Fn() -> Result<R, WireError> + Sync,
{
    let chunks = index.entries.len();
    if chunks == 0 {
        return Ok(Vec::new());
    }
    let payload_bytes: u64 = index.entries.iter().map(|e| u64::from(e.payload_len)).sum();
    let workers = workers.clamp(1, chunks);
    if workers == 1 || payload_bytes < min_parallel_bytes {
        let mut r = open()?;
        let mut scratch = Vec::new();
        let mut out = Vec::with_capacity(chunks);
        for (i, entry) in index.entries.iter().enumerate() {
            let mut events = Vec::new();
            read_chunk_with(&mut r, i as u32, entry, &mut scratch, &mut events)?;
            out.push(events);
        }
        return Ok(out);
    }

    // One contiguous range per worker; slot `i` of `slots` receives chunk
    // `i`'s result, so reassembly is just collecting the vector.
    let mut slots: Vec<Option<Result<ChunkEvents, WireError>>> =
        (0..chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<Result<ChunkEvents, WireError>>] = &mut slots;
        let mut start = 0usize;
        for w in 0..workers {
            let lo = chunks * w / workers;
            let hi = chunks * (w + 1) / workers;
            let (mine, tail) = rest.split_at_mut(hi - start);
            rest = tail;
            start = hi;
            let open = &open;
            scope.spawn(move || {
                let mut reader = match open() {
                    Ok(r) => r,
                    Err(e) => {
                        if let Some(slot) = mine.first_mut() {
                            *slot = Some(Err(e));
                        }
                        return;
                    }
                };
                let mut scratch = Vec::new();
                for (off, slot) in mine.iter_mut().enumerate() {
                    let ordinal = lo + off;
                    let mut events = Vec::new();
                    let res = read_chunk_with(
                        &mut reader,
                        ordinal as u32,
                        &index.entries[ordinal],
                        &mut scratch,
                        &mut events,
                    );
                    *slot = Some(res.map(|()| events));
                    if matches!(slot, Some(Err(_))) {
                        break;
                    }
                }
            });
        }
    });
    let mut out = Vec::with_capacity(chunks);
    for slot in slots {
        match slot {
            Some(Ok(events)) => out.push(events),
            Some(Err(e)) => return Err(e),
            // A worker bailed after an earlier error; report that error
            // (it was already returned above, in index order) — reaching a
            // `None` slot without a preceding error is impossible.
            None => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_index;
    use crate::writer::{WireOptions, WireWriter};
    use aprof_trace::{Addr, RoutineTable};
    use std::io::Cursor;

    fn sample(chunk_bytes: usize, n: u32) -> (Vec<u8>, Vec<(ThreadId, Event)>) {
        let events: Vec<(ThreadId, Event)> = (0..n)
            .map(|i| {
                let t = ThreadId::new(i % 3);
                match i % 3 {
                    0 => (t, Event::Read { addr: Addr::new(u64::from(i) * 11) }),
                    1 => (t, Event::Write { addr: Addr::new(u64::from(i)) }),
                    _ => (t, Event::BasicBlock { cost: u64::from(i) }),
                }
            })
            .collect();
        let mut names = RoutineTable::new();
        names.intern("only");
        let opts = WireOptions { chunk_bytes, ..Default::default() };
        let mut w = WireWriter::create(Vec::new(), &names, opts).unwrap();
        for &(t, e) in &events {
            w.push(t, e).unwrap();
        }
        (w.finish().unwrap().0, events)
    }

    fn flatten(shards: Vec<Vec<(ThreadId, Event)>>) -> Vec<(ThreadId, Event)> {
        shards.into_iter().flatten().collect()
    }

    #[test]
    fn parallel_matches_sequential_both_paths() {
        let (bytes, events) = sample(64, 500);
        let index = read_index(&mut Cursor::new(&bytes)).unwrap();
        assert!(index.entries.len() > 4, "want several chunks");
        for workers in [1, 2, 3, 8] {
            // Forced-parallel (threshold 0) and forced-sequential
            // (threshold huge) must both reproduce the trace.
            for threshold in [0, u64::MAX] {
                let shards = decode_chunks_with(
                    || Ok(Cursor::new(&bytes)),
                    &index,
                    workers,
                    threshold,
                )
                .unwrap();
                assert_eq!(shards.len(), index.entries.len());
                assert_eq!(flatten(shards), events, "workers={workers} threshold={threshold}");
            }
        }
    }

    #[test]
    fn default_threshold_takes_sequential_path_on_small_traces() {
        // A tiny trace decodes without spawning; the observable contract is
        // just correctness, but exercise the default entry point.
        let (bytes, events) = sample(64, 100);
        let index = read_index(&mut Cursor::new(&bytes)).unwrap();
        let shards = decode_chunks(|| Ok(Cursor::new(&bytes)), &index, 8).unwrap();
        assert_eq!(flatten(shards), events);
    }

    #[test]
    fn corrupt_chunk_surfaces_first_error_in_index_order() {
        let (mut bytes, _) = sample(64, 500);
        let index = read_index(&mut Cursor::new(&bytes)).unwrap();
        let victim = &index.entries[2];
        let hit = (victim.offset + 13 + u64::from(victim.payload_len) / 2) as usize;
        bytes[hit] ^= 0xff;
        for threshold in [0, u64::MAX] {
            let err =
                decode_chunks_with(|| Ok(Cursor::new(&bytes)), &index, 4, threshold).unwrap_err();
            assert!(
                matches!(err, WireError::ChunkCorrupt { index: 2, .. }),
                "expected chunk 2 corrupt, got {err:?}"
            );
        }
    }

    #[test]
    fn empty_index_decodes_to_nothing() {
        let index = WireIndex { entries: Vec::new(), total_events: 0, thread_count: 0 };
        let shards =
            decode_chunks(|| Ok(Cursor::new(Vec::new())), &index, 4).unwrap();
        assert!(shards.is_empty());
    }
}
