//! Fuzz-style robustness: no mutation of a wire file may panic the
//! decoder or produce a silently wrong event stream. Every single-bit
//! flip, every truncation point, and spliced/duplicated chunks must end in
//! a typed [`WireError`] or an explicitly reported skipped chunk.

use aprof_trace::{Addr, Event, RoutineTable, ThreadId};
use aprof_wire::{SkippedChunk, WireError, WireOptions, WireReader, WireWriter};

/// A small multi-chunk file (~a few hundred bytes, so exhaustive bit-flip
/// and truncation sweeps stay fast).
fn sample_file() -> Vec<u8> {
    let mut names = RoutineTable::new();
    let f = names.intern("f");
    let g = names.intern("g");
    let opts = WireOptions { chunk_bytes: 24, ..Default::default() };
    let mut w = WireWriter::create(Vec::new(), &names, opts).unwrap();
    for i in 0..40u64 {
        let t = ThreadId::new((i % 2) as u32);
        w.push(t, Event::Call { routine: if i % 2 == 0 { f } else { g } }).unwrap();
        w.push(t, Event::Read { addr: Addr::new(i * 8) }).unwrap();
        w.push(t, Event::Write { addr: Addr::new(i * 8 + 1) }).unwrap();
        w.push(t, Event::Return { routine: if i % 2 == 0 { f } else { g } }).unwrap();
    }
    let (bytes, summary) = w.finish().unwrap();
    assert!(summary.chunks >= 3, "want a multi-chunk sample, got {}", summary.chunks);
    bytes
}

/// Decodes `bytes` leniently, returning the events, the skip reports, and
/// the terminal error if any. Any panic fails the test by propagating.
fn decode(bytes: &[u8]) -> (Vec<(ThreadId, Event)>, Vec<SkippedChunk>, Option<WireError>) {
    let mut reader = match WireReader::new(bytes) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Vec::new(), Some(e)),
    };
    let mut events = Vec::new();
    let mut error = None;
    for item in reader.by_ref() {
        match item {
            Ok(ev) => events.push(ev),
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    (events, reader.skipped().to_vec(), error)
}

#[test]
fn every_single_bit_flip_is_detected() {
    let pristine = sample_file();
    let (reference, skipped, error) = decode(&pristine);
    assert!(skipped.is_empty() && error.is_none());

    let mut undetected = Vec::new();
    for byte in 0..pristine.len() {
        for bit in 0..8 {
            let mut mutated = pristine.clone();
            mutated[byte] ^= 1 << bit;
            let (events, skipped, error) = decode(&mutated);
            // The flip must be *accounted for*: either a typed error, or
            // at least one skipped chunk. A clean full decode of different
            // events would be a silent corruption — the one forbidden
            // outcome.
            if error.is_none() && skipped.is_empty() && events != reference {
                undetected.push((byte, bit));
            }
        }
    }
    assert!(
        undetected.is_empty(),
        "bit flips decoded cleanly to wrong events: {undetected:?}"
    );
}

#[test]
fn every_truncation_point_yields_a_typed_error() {
    let pristine = sample_file();
    for len in 0..pristine.len() {
        let (_, _, error) = decode(&pristine[..len]);
        let error = error.unwrap_or_else(|| {
            panic!("decoding a {len}-byte prefix of a {}-byte file succeeded", pristine.len())
        });
        // Truncation severs either a structure mid-read or the index.
        assert!(
            matches!(
                error,
                WireError::UnexpectedEof { .. }
                    | WireError::IndexCorrupt { .. }
                    | WireError::BadFooter { .. }
                    | WireError::ChunkCorrupt { .. }
            ),
            "prefix {len}: unexpected error class {error:?}"
        );
    }
}

#[test]
fn strict_mode_rejects_what_lenient_mode_skips() {
    let pristine = sample_file();
    // Flip a byte in the middle of the first chunk's payload (the header
    // is small: magic 8 + version 4 + len 4 + payload + crc 4; first
    // chunk framing follows). Locate it via the index.
    let index =
        aprof_wire::read_index(&mut std::io::Cursor::new(&pristine)).unwrap();
    let entry = &index.entries[0];
    let mut mutated = pristine.clone();
    mutated[(entry.offset + 13) as usize + entry.payload_len as usize / 2] ^= 0x40;

    let (_, skipped, error) = decode(&mutated);
    assert!(error.is_none(), "lenient reader should recover: {error:?}");
    assert_eq!(skipped.len(), 1);
    assert_eq!(skipped[0].index, 0);

    let strict_err = WireReader::new(&mutated[..])
        .unwrap()
        .strict()
        .collect::<Result<Vec<_>, _>>()
        .unwrap_err();
    assert!(matches!(strict_err, WireError::ChunkCorrupt { index: 0, .. }));
}

#[test]
fn spliced_chunks_are_caught_by_the_index() {
    let pristine = sample_file();
    let index =
        aprof_wire::read_index(&mut std::io::Cursor::new(&pristine)).unwrap();
    let (e0, e1) = (&index.entries[0], &index.entries[1]);
    let start = e0.offset as usize;
    let mid = e1.offset as usize;
    let end = mid + 13 + e1.payload_len as usize;

    // Duplicate chunk 1 over chunk 0's position? Sizes differ, so instead
    // splice: drop chunk 0 entirely.
    let mut dropped = Vec::new();
    dropped.extend_from_slice(&pristine[..start]);
    dropped.extend_from_slice(&pristine[mid..]);
    let (_, _, error) = decode(&dropped);
    assert!(
        matches!(error, Some(WireError::IndexCorrupt { .. }) | Some(WireError::BadFooter { .. })),
        "dropping a chunk must desync the index/footer, got {error:?}"
    );

    // Duplicate chunk 1 right after itself: chunk count disagrees.
    let mut duplicated = Vec::new();
    duplicated.extend_from_slice(&pristine[..end]);
    duplicated.extend_from_slice(&pristine[mid..]);
    let (_, _, error) = decode(&duplicated);
    assert!(
        matches!(error, Some(WireError::IndexCorrupt { .. }) | Some(WireError::BadFooter { .. })),
        "duplicating a chunk must desync the index/footer, got {error:?}"
    );
}

#[test]
fn arbitrary_garbage_never_panics() {
    // Deterministic xorshift so the test needs no RNG dependency.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 7, 8, 16, 64, 256, 1024] {
        for _ in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let (_, _, error) = decode(&bytes);
            assert!(error.is_some(), "garbage of length {len} decoded cleanly");
        }
    }
    // Garbage behind a valid magic+version prefix.
    let mut prefixed = Vec::new();
    prefixed.extend_from_slice(b"aprwire1");
    prefixed.extend_from_slice(&1u32.to_le_bytes());
    for _ in 0..64 {
        let mut bytes = prefixed.clone();
        bytes.extend((0..64).map(|_| next() as u8));
        let (_, _, error) = decode(&bytes);
        assert!(error.is_some(), "garbage header decoded cleanly");
    }
}

#[test]
fn profiles_from_damaged_files_are_never_silently_wrong() {
    use aprof_core::RmsProfiler;

    let pristine = sample_file();
    let names = {
        let mut names = RoutineTable::new();
        names.intern("f");
        names.intern("g");
        names
    };
    let mut reference = RmsProfiler::new();
    reference
        .consume_stream(WireReader::new(&pristine[..]).unwrap())
        .unwrap();
    let reference = reference.into_report(&names);

    let mut mismatches_without_evidence = 0;
    for byte in (0..pristine.len()).step_by(7) {
        let mut mutated = pristine.clone();
        mutated[byte] ^= 0x10;
        let mut reader = match WireReader::new(&mutated[..]) {
            Ok(r) => r,
            Err(_) => continue, // typed rejection: fine
        };
        let mut profiler = RmsProfiler::new();
        if profiler.consume_stream(&mut reader).is_err() {
            continue; // typed rejection: fine
        }
        let evidence = !reader.skipped().is_empty();
        if profiler.into_report(&names) != reference && !evidence {
            mismatches_without_evidence += 1;
        }
    }
    assert_eq!(
        mismatches_without_evidence, 0,
        "a damaged file produced a different profile with no error and no skip report"
    );
}
