//! Differential property tests: the wire format is a faithful, lossless
//! transport. Arbitrary traces survive text→wire→text round trips, and a
//! profiler fed by a `WireReader` produces a profile identical to one fed
//! by an in-memory `Trace::replay` — across chunk sizes from "one event
//! per chunk" to "everything in one chunk".

use aprof_core::{RmsProfiler, TrmsProfiler};
use aprof_trace::{textio, Addr, Event, RoutineId, RoutineTable, ThreadId, Trace};
use aprof_wire::{WireOptions, WireReader, WireWriter};
use proptest::prelude::*;

/// Chunk payload targets exercised by every property: 1 byte (every chunk
/// holds a single event), 2 bytes, the 4 KiB sweet spot, and 1 MiB (the
/// whole trace lands in one chunk).
const CHUNK_SIZES: [usize; 4] = [1, 2, 4096, 1 << 20];

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u32..8).prop_map(|r| Event::Call { routine: RoutineId::new(r) }),
        (0u32..8).prop_map(|r| Event::Return { routine: RoutineId::new(r) }),
        any::<u64>().prop_map(|a| Event::Read { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::Write { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::KernelRead { addr: Addr::new(a) }),
        any::<u64>().prop_map(|a| Event::KernelWrite { addr: Addr::new(a) }),
        (1u64..1000).prop_map(|c| Event::BasicBlock { cost: c }),
        Just(Event::ThreadSwitch),
        Just(Event::ThreadStart),
        Just(Event::ThreadExit),
    ]
}

fn build_trace(events: &[(u32, Event)]) -> Trace {
    let mut trace = Trace::new();
    for (t, e) in events {
        trace.push(ThreadId::new(*t), *e);
    }
    trace
}

/// Rewrites a random event sequence into one the profilers accept: every
/// `Return` closes the routine actually on top of its thread's stack, and
/// unmatched returns are dropped. (The wire codec itself is agnostic —
/// only the profiling differential needs well-formed call nesting.)
fn well_formed(events: &[(u32, Event)]) -> Trace {
    let mut stacks: std::collections::HashMap<u32, Vec<RoutineId>> = Default::default();
    let mut trace = Trace::new();
    for (t, e) in events {
        match e {
            Event::Return { .. } => {
                if let Some(routine) = stacks.entry(*t).or_default().pop() {
                    trace.push(ThreadId::new(*t), Event::Return { routine });
                }
            }
            Event::Call { routine } => {
                stacks.entry(*t).or_default().push(*routine);
                trace.push(ThreadId::new(*t), *e);
            }
            _ => trace.push(ThreadId::new(*t), *e),
        }
    }
    trace
}

fn routine_names() -> RoutineTable {
    let mut names = RoutineTable::new();
    for i in 0..8 {
        names.intern(&format!("routine_{i}"));
    }
    names
}

/// Encodes a trace into wire bytes with the given chunk payload target.
fn to_wire(trace: &Trace, names: &RoutineTable, chunk_bytes: usize) -> Vec<u8> {
    let opts = WireOptions { chunk_bytes, ..Default::default() };
    let mut writer = WireWriter::create(Vec::new(), names, opts).unwrap();
    for te in trace.events() {
        writer.push(te.thread, te.event).unwrap();
    }
    let (bytes, summary) = writer.finish().unwrap();
    assert_eq!(summary.events, trace.len() as u64);
    bytes
}

proptest! {
    /// text → wire → text is the identity on the rendered form.
    #[test]
    fn text_wire_text_roundtrip(
        events in prop::collection::vec((0u32..4, event_strategy()), 0..200),
    ) {
        let trace = build_trace(&events);
        let text = textio::to_text(&trace);
        let names = routine_names();
        for chunk_bytes in CHUNK_SIZES {
            let bytes = to_wire(&trace, &names, chunk_bytes);
            let decoded: Trace = WireReader::new(&bytes[..])
                .unwrap()
                .collect::<Result<Trace, _>>()
                .unwrap();
            prop_assert_eq!(
                &textio::to_text(&decoded),
                &text,
                "chunk_bytes {}", chunk_bytes
            );
        }
    }

    /// The index always describes the stream exactly, whatever the
    /// chunking, and random-access chunk decode sees the same events as
    /// the sequential reader.
    #[test]
    fn index_matches_stream(
        events in prop::collection::vec((0u32..4, event_strategy()), 0..120),
        chunk_bytes in prop_oneof![Just(1usize), Just(7), Just(64), Just(4096)],
    ) {
        let trace = build_trace(&events);
        let names = routine_names();
        let bytes = to_wire(&trace, &names, chunk_bytes);

        let mut cursor = std::io::Cursor::new(&bytes);
        let index = aprof_wire::read_index(&mut cursor).unwrap();
        prop_assert_eq!(index.total_events, trace.len() as u64);

        let mut random_access = Vec::new();
        let mut chunk = Vec::new();
        for (i, entry) in index.entries.iter().enumerate() {
            aprof_wire::read_chunk(&mut cursor, i as u32, entry, &mut chunk).unwrap();
            prop_assert_eq!(chunk.len(), entry.events as usize);
            random_access.extend_from_slice(&chunk);
        }
        let sequential: Vec<_> = WireReader::new(&bytes[..])
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        prop_assert_eq!(random_access, sequential);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A profiler consuming a WireReader computes the same rms and trms
    /// profiles as one replaying the in-memory trace.
    #[test]
    fn wire_fed_profiles_match_in_memory_replay(
        events in prop::collection::vec((0u32..4, event_strategy()), 0..150),
    ) {
        let trace = well_formed(&events);
        let names = routine_names();

        let mut trms_mem = TrmsProfiler::new();
        trace.replay(&mut trms_mem);
        let trms_expected = trms_mem.into_report(&names);

        let mut rms_mem = RmsProfiler::new();
        trace.replay(&mut rms_mem);
        let rms_expected = rms_mem.into_report(&names);

        for chunk_bytes in CHUNK_SIZES {
            let bytes = to_wire(&trace, &names, chunk_bytes);

            let mut reader = WireReader::new(&bytes[..]).unwrap();
            prop_assert_eq!(reader.routines().len(), names.len());
            let mut trms = TrmsProfiler::new();
            trms.consume_stream(&mut reader).unwrap();
            prop_assert_eq!(
                &trms.into_report(&names), &trms_expected,
                "trms, chunk_bytes {}", chunk_bytes
            );

            let mut rms = RmsProfiler::new();
            rms.consume_stream(WireReader::new(&bytes[..]).unwrap()).unwrap();
            prop_assert_eq!(
                &rms.into_report(&names), &rms_expected,
                "rms, chunk_bytes {}", chunk_bytes
            );
        }
    }
}
