//! Differential property tests: the branchless varint decoder
//! (`read_u64_fast`) must be byte-for-byte equivalent to the retained
//! scalar reference decoder (`read_u64`) — same accepted language, same
//! decoded values, same cursor positions — over arbitrary payloads,
//! including maximum-length and truncated encodings.

use aprof_wire::varint::{read_u64, read_u64_fast, write_u64, MAX_VARINT_BYTES};
use proptest::prelude::*;

/// Asserts both decoders agree at `pos` in `buf`, returning the scalar
/// verdict so callers can keep walking the payload.
fn assert_agree(buf: &[u8], pos: usize) -> (Option<u64>, usize) {
    let mut scalar_pos = pos;
    let scalar = read_u64(buf, &mut scalar_pos);
    let mut fast_pos = pos;
    let fast = read_u64_fast(buf, &mut fast_pos);
    assert_eq!(scalar, fast, "value at {pos} in {buf:02x?}");
    if scalar.is_some() {
        assert_eq!(scalar_pos, fast_pos, "cursor at {pos} in {buf:02x?}");
    }
    (scalar, scalar_pos)
}

proptest! {
    /// Walk a payload of valid encodings: every value round-trips through
    /// the fast decoder exactly as through the scalar one.
    #[test]
    fn encoded_payloads_decode_identically(values in prop::collection::vec(
        prop_oneof![
            any::<u64>(),
            // Small values (1–2 byte encodings) dominate real payloads.
            0u64..1024,
            // 8-byte-window edge: values needing exactly 8, 9 or 10 bytes.
            (1u64 << 49)..=u64::MAX,
        ],
        0..50,
    )) {
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, next) = assert_agree(&buf, pos);
            prop_assert_eq!(got, Some(v));
            pos = next;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Arbitrary (mostly invalid) bytes: both decoders agree on accept vs
    /// reject and on the decoded value, at every starting offset.
    #[test]
    fn random_bytes_decode_identically(buf in prop::collection::vec(any::<u8>(), 0..64)) {
        for pos in 0..=buf.len() {
            assert_agree(&buf, pos);
        }
    }

    /// Continuation-heavy bytes stress the long-encoding fallback path
    /// (9–10-byte encodings and overlong rejections).
    #[test]
    fn continuation_heavy_bytes_decode_identically(buf in prop::collection::vec(
        prop_oneof![4 => 0x80u8..=0xff, 1 => 0x00u8..=0x7f], 0..32)) {
        for pos in 0..=buf.len() {
            assert_agree(&buf, pos);
        }
    }

    /// Every truncation of a valid encoding is rejected by both decoders.
    #[test]
    fn truncations_rejected_identically(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        for k in 0..buf.len() {
            let (got, _) = assert_agree(&buf[..k], 0);
            prop_assert_eq!(got, None, "prefix {k}");
        }
    }
}

#[test]
fn max_length_and_boundary_values_agree() {
    // Deterministic sweep of the window boundaries: 7-, 8-, 9- and 10-byte
    // encodings, plus the canonical extremes.
    for v in [
        0u64,
        1,
        (1 << 49) - 1, // longest 7-byte encoding
        1 << 49,       // shortest 8-byte encoding
        (1 << 56) - 1, // longest 8-byte encoding (fills the fast window)
        1 << 56,       // shortest 9-byte encoding (fallback)
        (1 << 63) - 1,
        1 << 63,
        u64::MAX, // 10-byte encoding
    ] {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let (got, pos) = assert_agree(&buf, 0);
        assert_eq!(got, Some(v));
        assert_eq!(pos, buf.len());
        assert!(buf.len() <= MAX_VARINT_BYTES);
    }
}

#[test]
fn overlong_encodings_rejected_identically() {
    // Eleven continuation bytes never appear in valid output.
    assert_agree(&[0x80; 11], 0);
    assert_eq!(read_u64_fast(&[0x80; 11], &mut 0), None);
    // A 10th byte carrying more than the final bit overflows u64.
    let mut buf = vec![0x80u8; 9];
    buf.push(0x02);
    assert_agree(&buf, 0);
    assert_eq!(read_u64_fast(&buf, &mut 0), None);
}
