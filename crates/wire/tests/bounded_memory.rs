//! Acceptance check: replay memory is bounded by the chunk size, not the
//! trace size. A trace at least 64× larger than the chunk budget must
//! decode with a peak chunk buffer no bigger than the budget plus one
//! maximally-sized event of slack.

use aprof_trace::{Addr, Event, RoutineTable, ThreadId};
use aprof_wire::{WireOptions, WireReader, WireWriter};

#[test]
fn peak_replay_memory_is_bounded_by_chunk_size() {
    const CHUNK_BYTES: usize = 1024;

    let mut names = RoutineTable::new();
    let f = names.intern("hot_loop");
    let opts = WireOptions { chunk_bytes: CHUNK_BYTES, ..Default::default() };
    let mut writer = WireWriter::create(Vec::new(), &names, opts).unwrap();

    // Wide random-looking addresses defeat delta compression, so the file
    // comfortably clears the 64×-chunk-size floor.
    let mut addr = 0x9e37_79b9u64;
    let mut pushed = 0u64;
    writer.push(ThreadId::MAIN, Event::Call { routine: f }).unwrap();
    while pushed < 40_000 {
        addr = addr.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        writer.push(ThreadId::MAIN, Event::Read { addr: Addr::new(addr) }).unwrap();
        writer.push(ThreadId::MAIN, Event::Write { addr: Addr::new(addr ^ 0xffff) }).unwrap();
        pushed += 2;
    }
    writer.push(ThreadId::MAIN, Event::Return { routine: f }).unwrap();
    let (bytes, summary) = writer.finish().unwrap();

    assert!(
        bytes.len() >= 64 * CHUNK_BYTES,
        "trace too small to be meaningful: {} bytes < 64 * {CHUNK_BYTES}",
        bytes.len()
    );

    let mut reader = WireReader::new(&bytes[..]).unwrap();
    let mut decoded = 0u64;
    for item in reader.by_ref() {
        item.unwrap();
        decoded += 1;
    }
    assert_eq!(decoded, summary.events);

    let stats = reader.stats();
    assert_eq!(stats.events, summary.events);
    assert_eq!(stats.chunks, summary.chunks);
    // The writer seals a chunk once the payload reaches the budget, so a
    // chunk can overshoot by at most one encoded event.
    assert!(
        stats.peak_chunk_bytes <= CHUNK_BYTES + aprof_wire::format::MAX_EVENT_BYTES,
        "peak chunk buffer {} exceeds chunk budget {CHUNK_BYTES}",
        stats.peak_chunk_bytes
    );
    assert!(summary.chunks >= 64, "expected >= 64 chunks, got {}", summary.chunks);
}
