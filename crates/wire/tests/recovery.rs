//! The recovery contract, property-tested: truncating a capture at an
//! *arbitrary* byte offset and running [`aprof_wire::recover`] salvages
//! exactly the CRC-valid chunk prefix, and replaying the salvage yields the
//! same-length prefix of the uncorrupted replay. This is the differential
//! behind `aprof recover`: a `kill -9` at any moment loses at most the open
//! chunk, never corrupts what was flushed, and never panics.

use aprof_trace::{Addr, Event, RoutineTable, ThreadId};
use aprof_wire::{recover, StopReason, WireError, WireOptions, WireReader, WireWriter};
use proptest::prelude::*;

/// A deterministic event stream: enough kinds and threads to exercise the
/// delta codec, sized by the generator.
fn sample_events(n: u64, salt: u64) -> (RoutineTable, Vec<(ThreadId, Event)>) {
    let mut names = RoutineTable::new();
    let f = names.intern("fib");
    let g = names.intern("gather");
    let mut events = Vec::new();
    for i in 0..n {
        let x = i.wrapping_mul(0x9E37_79B9).wrapping_add(salt);
        let t = ThreadId::new((x % 3) as u32);
        events.push((t, Event::Call { routine: if x % 2 == 0 { f } else { g } }));
        events.push((t, Event::BasicBlock { cost: 1 + x % 7 }));
        events.push((t, Event::Read { addr: Addr::new(x.wrapping_mul(13)) }));
        if x % 4 == 0 {
            events.push((t, Event::Write { addr: Addr::new(x.wrapping_mul(13) + 1) }));
        }
        events.push((t, Event::Return { routine: if x % 2 == 0 { f } else { g } }));
    }
    (names, events)
}

fn capture(names: &RoutineTable, events: &[(ThreadId, Event)], chunk_bytes: usize) -> Vec<u8> {
    let opts = WireOptions { chunk_bytes, ..Default::default() };
    let mut w = WireWriter::create(Vec::new(), names, opts).unwrap();
    for &(t, e) in events {
        w.push(t, e).unwrap();
    }
    w.finish().unwrap().0
}

/// Replays a (valid) wire file strictly.
fn replay(bytes: &[u8]) -> Vec<(ThreadId, Event)> {
    WireReader::new(bytes)
        .unwrap()
        .strict()
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every truncation offset: header cuts give a typed error; any
    /// other cut salvages exactly the chunks that fit completely inside the
    /// kept prefix, and the salvage replays to the corresponding prefix of
    /// the uncorrupted event stream.
    #[test]
    fn truncation_salvages_exactly_the_valid_chunk_prefix(
        n in 8u64..80,
        salt in any::<u64>(),
        chunk_bytes in 16usize..256,
        cut_sel in any::<u64>(),
    ) {
        let (names, events) = sample_events(n, salt);
        let pristine = capture(&names, &events, chunk_bytes);

        // Ground truth from the pristine file's own index.
        let (index, full_events) = {
            let mut r = WireReader::new(&pristine[..]).unwrap();
            let decoded: Vec<_> = r.by_ref().collect::<Result<_, _>>().unwrap();
            (r.index().unwrap().clone(), decoded)
        };
        prop_assert_eq!(&full_events, &events);
        let header_len = index.entries.first().map(|e| e.offset).unwrap_or(0) as usize;
        prop_assert!(header_len > 0, "multi-chunk sample expected");

        let cut = (cut_sel % (pristine.len() as u64 + 1)) as usize;
        let torn = &pristine[..cut];

        if cut < header_len {
            // Header damage is unrecoverable and must be a typed error,
            // never a panic.
            let err = recover(torn, &mut Vec::new()).unwrap_err();
            prop_assert!(
                matches!(
                    err,
                    WireError::UnexpectedEof { .. }
                        | WireError::BadMagic { .. }
                        | WireError::HeaderCorrupt { .. }
                ),
                "cut {} inside header gave {:?}", cut, err
            );
            return;
        }

        let mut out = Vec::new();
        let summary = recover(torn, &mut out).unwrap();

        // Exactly the chunks whose framing + payload fit inside the cut.
        let expect: Vec<_> = index
            .entries
            .iter()
            .take_while(|e| e.offset + 13 + u64::from(e.payload_len) <= cut as u64)
            .collect();
        prop_assert_eq!(summary.chunks as usize, expect.len());
        let expect_events: u64 = expect.iter().map(|e| u64::from(e.events)).sum();
        prop_assert_eq!(summary.events, expect_events);

        // The salvage is a fully valid file whose replay is the same-length
        // prefix of the uncorrupted replay.
        let salvaged = replay(&out);
        prop_assert_eq!(salvaged.len() as u64, expect_events);
        prop_assert_eq!(&salvaged[..], &events[..salvaged.len()]);

        // Recovering the salvage again is a byte-identical fixpoint.
        let mut again = Vec::new();
        let second = recover(&out[..], &mut again).unwrap();
        prop_assert!(second.was_intact());
        prop_assert_eq!(&again, &out);
    }

    /// Flipping one payload byte past the header never panics recovery and
    /// never yields events outside the pristine prefix contract.
    #[test]
    fn single_corruption_keeps_salvage_a_valid_prefix(
        n in 8u64..40,
        salt in any::<u64>(),
        victim_sel in any::<u64>(),
    ) {
        let (names, events) = sample_events(n, salt);
        let mut bytes = capture(&names, &events, 48);
        let (index, _) = {
            let mut r = WireReader::new(&bytes[..]).unwrap();
            let decoded: Vec<_> = r.by_ref().collect::<Result<_, _>>().unwrap();
            (r.index().unwrap().clone(), decoded)
        };
        let header_len = index.entries[0].offset as usize;
        let victim = header_len + (victim_sel % ((bytes.len() - header_len) as u64)) as usize;
        bytes[victim] ^= 0x41;

        let mut out = Vec::new();
        let summary = recover(&bytes[..], &mut out).unwrap();
        let salvaged = replay(&out);
        prop_assert_eq!(salvaged.len() as u64, summary.events);
        prop_assert_eq!(&salvaged[..], &events[..salvaged.len()]);
    }
}

/// The `Durable`-shaped crash (file ends exactly where the index would
/// begin) loses nothing.
#[test]
fn footerless_durable_shape_loses_nothing() {
    let (names, events) = sample_events(50, 7);
    let bytes = capture(&names, &events, 64);
    let footer_at = bytes.len() - 16;
    let index_offset =
        u64::from_le_bytes(bytes[footer_at..footer_at + 8].try_into().unwrap()) as usize;
    let mut out = Vec::new();
    let summary = recover(&bytes[..index_offset], &mut out).unwrap();
    assert_eq!(summary.stopped, StopReason::CleanEof);
    assert_eq!(replay(&out), events);
}
