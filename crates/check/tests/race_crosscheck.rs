//! Static-versus-dynamic race containment: every address on which the
//! dynamic happens-before detector (`HelgrindTool`) reports a race during
//! an actual run must lie inside the verifier's static race-candidate set.
//!
//! The containment argument: the static pass pairs accesses whose
//! *must*-locksets are disjoint. Must-locksets under-approximate the locks
//! actually held, so the static pass never invents a common lock that the
//! dynamic execution lacked — any pair of accesses that can race
//! dynamically is also lockset-disjoint statically (and alias analysis
//! only widens, never narrows, the candidate set).

use aprof_check::check_program;
use aprof_tools::HelgrindTool;
use aprof_vm::asm;
use aprof_vm::Machine;
use aprof_workloads::{all, WorkloadParams};

/// Runs helgrind over a machine and asserts containment of its findings in
/// the static candidate set of the same program.
fn assert_contained(name: &str, mut machine: Machine) {
    let report = check_program(machine.program());
    let mut tool = HelgrindTool::new();
    machine.run_with(&mut tool).unwrap_or_else(|e| panic!("{name}: guest error: {e}"));
    for addr in tool.racy_addresses() {
        assert!(
            report.races.covers_addr(addr),
            "{name}: dynamic race on cell {addr} missing from static candidates \
             (cells {:?}, dynamic_regions {})",
            report.races.cells,
            report.races.dynamic_regions
        );
    }
}

#[test]
fn every_workload_helgrind_report_is_statically_anticipated() {
    // Two sizes and thread counts so both light and contended schedules
    // are exercised; the static result is computed per built program.
    for params in [
        WorkloadParams { size: 48, threads: 2, seed: 0x5eed },
        WorkloadParams { size: 96, threads: 4, seed: 0xfeed },
    ] {
        for wl in all() {
            assert_contained(wl.name, wl.build(&params));
        }
    }
}

#[test]
fn deliberately_racy_program_is_caught_both_ways() {
    let src = "\
        func main() regs=4 {\n\
        entry:\n\
            r0 = spawn worker()\n\
            r1 = const 64\n\
            r2 = const 1\n\
            store r2, r1, 0\n\
            join r0\n\
            ret\n\
        }\n\
        func worker() regs=3 {\n\
        entry:\n\
            r0 = const 64\n\
            r1 = const 2\n\
            store r1, r0, 0\n\
            ret\n\
        }\n";
    let program = asm::parse(src).expect("racy program parses");
    let report = check_program(&program);
    assert!(report.races.covers_addr(64), "static candidates must include cell 64");
    assert_contained("deliberate_race", Machine::new(program));
}

#[test]
fn properly_locked_program_has_no_candidates_and_no_dynamic_races() {
    let src = "\
        func main() regs=4 {\n\
        entry:\n\
            r0 = spawn worker()\n\
            call bump()\n\
            join r0\n\
            ret\n\
        }\n\
        func worker() regs=1 {\n\
        entry:\n\
            call bump()\n\
            ret\n\
        }\n\
        func bump() regs=4 {\n\
        entry:\n\
            r0 = const 9\n\
            acquire r0\n\
            r1 = const 64\n\
            r2 = load r1, 0\n\
            r3 = const 1\n\
            r2 = add r2, r3\n\
            store r2, r1, 0\n\
            release r0\n\
            ret\n\
        }\n";
    let program = asm::parse(src).expect("locked program parses");
    let report = check_program(&program);
    assert!(report.races.is_empty(), "locked program should have no candidates");
    let mut machine = Machine::new(program);
    let mut tool = HelgrindTool::new();
    machine.run_with(&mut tool).expect("locked program runs");
    assert_eq!(tool.report().races, 0, "helgrind should agree the program is clean");
}
