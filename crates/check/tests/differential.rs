//! Soundness differential tests: the verifier versus the machine.
//!
//! Two generators drive ≥256 random cases each:
//!
//! * **(a) well-formed programs** in the *constant-key fragment* (lock keys
//!   are always `const`-defined immediately before use — the fragment where
//!   the lockset analysis is exact rather than taint-suppressed):
//!   - the verifier never panics;
//!   - programs it accepts without init/lock findings never raise the
//!     checked error classes (`UseBeforeDef` under `strict_regs`,
//!     `LockNotHeld`) when executed;
//!   - conversely, every run that *does* raise a checked class was flagged
//!     statically (`E002`/`W104` for init, `E007`/`W105` for locks).
//!
//!   Unchecked classes (deadlock, block budget, bad thread handle, thread
//!   limit) are outside the verifier's scope and ignored.
//!
//! * **(b) arbitrary function lists**, mostly structurally invalid:
//!   - the verifier never panics;
//!   - it reports a hard error if and only if [`Program::new`] rejects.

use aprof_check::{check_functions, Severity};
use aprof_vm::ir::{
    BasicBlock, BinOp, BlockId, CmpOp, FuncId, Function, Instr, Program, Reg, Terminator,
};
use aprof_vm::{Machine, MachineConfig, VmError};
use proptest::prelude::*;

/// Registers per generated function (generator a).
const REGS: u16 = 6;

/// One abstract instruction slot; materialized by [`materialize_op`].
type RawOp = (u8, u8, u8, i8);
/// One abstract terminator: (kind, operand, target).
type RawTerm = (u8, u8, u8);
/// One abstract block: ops plus terminator.
type RawBlock = (Vec<RawOp>, RawTerm);

fn op_strategy() -> impl Strategy<Value = RawOp> {
    (0u8..12, any::<u8>(), any::<u8>(), any::<i8>())
}

fn block_strategy() -> impl Strategy<Value = RawBlock> {
    (
        prop::collection::vec(op_strategy(), 0..6),
        (0u8..4, any::<u8>(), any::<u8>()),
    )
}

fn func_strategy() -> impl Strategy<Value = Vec<RawBlock>> {
    prop::collection::vec(block_strategy(), 1..4)
}

/// Materializes one abstract op into 1–2 instructions of the constant-key
/// fragment. `callees` lists (function id, param count) this function may
/// call; spawns target the same set.
fn materialize_op(op: RawOp, callees: &[(u32, u16)], out: &mut Vec<Instr>) {
    let (kind, a, b, c) = op;
    let r = |x: u8| Reg(u16::from(x) % REGS);
    let (dst, src) = (r(a), r(b));
    match kind {
        0 => out.push(Instr::Const { dst, value: i64::from(c) }),
        1 => out.push(Instr::Mov { dst, src }),
        2 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][c.unsigned_abs() as usize % 3];
            out.push(Instr::Bin { op, dst, lhs: src, rhs: r(a.wrapping_add(b)) });
        }
        3 => {
            let op = [CmpOp::Lt, CmpOp::Eq, CmpOp::Ge][c.unsigned_abs() as usize % 3];
            out.push(Instr::Cmp { op, dst, lhs: src, rhs: r(a.wrapping_add(b)) });
        }
        4 => out.push(Instr::Load { dst, addr: src, offset: i64::from(c % 8) }),
        5 => out.push(Instr::Store { src: dst, addr: src, offset: i64::from(c % 8) }),
        6 | 7 => {
            // The constant-key fragment: the key register is always written
            // by a `const` in the instruction before the lock op.
            let key = Reg(REGS - 1);
            out.push(Instr::Const { dst: key, value: i64::from(c.unsigned_abs() % 3) + 1 });
            out.push(if kind == 6 {
                Instr::Acquire { lock: key }
            } else {
                Instr::Release { lock: key }
            });
        }
        8 | 9 => {
            if let Some(&(func, params)) = callees.get(usize::from(a) % callees.len().max(1)) {
                let args: Vec<Reg> = (0..params).map(|i| r(b.wrapping_add(i as u8))).collect();
                if kind == 8 {
                    let dst = if c < 0 { None } else { Some(dst) };
                    out.push(Instr::Call { dst, func: FuncId(func), args });
                } else {
                    out.push(Instr::Spawn { dst, func: FuncId(func), args });
                }
            }
        }
        10 => out.push(Instr::Join { thread: src }),
        _ => out.push(Instr::Yield),
    }
}

fn materialize_term(t: RawTerm, nblocks: usize, is_last: bool) -> Terminator {
    let (kind, x, y) = t;
    let blk = |v: u8| BlockId((u32::from(v) % nblocks as u32).min(nblocks as u32 - 1));
    if is_last {
        // The last block always returns, so every function terminates on
        // some path (runaway loops are still possible via earlier blocks
        // and get cut by the block budget — an unchecked class).
        return Terminator::Ret { value: if x % 2 == 0 { Some(Reg(u16::from(y) % REGS)) } else { None } };
    }
    match kind {
        0 => Terminator::Jmp(blk(x)),
        1 => Terminator::Br {
            cond: Reg(u16::from(x) % REGS),
            then_to: blk(y),
            else_to: blk(y.wrapping_add(1)),
        },
        _ => Terminator::Ret { value: if x % 2 == 0 { Some(Reg(u16::from(y) % REGS)) } else { None } },
    }
}

/// Builds a structurally valid 3-function program: `main` (entry, may call
/// or spawn both helpers), `h1(1 param)` (may call/spawn `h2`), `h2()`.
fn build_program(raw: &[Vec<RawBlock>; 3]) -> Vec<Function> {
    let shapes = [
        ("main", 0u16, vec![(1u32, 1u16), (2, 0)]),
        ("h1", 1, vec![(2, 0)]),
        ("h2", 0, vec![]),
    ];
    shapes
        .iter()
        .zip(raw)
        .map(|((name, params, callees), blocks)| {
            let n = blocks.len();
            let blocks = blocks
                .iter()
                .enumerate()
                .map(|(bi, (ops, term))| {
                    let mut instrs = Vec::new();
                    for &op in ops {
                        materialize_op(op, callees, &mut instrs);
                    }
                    BasicBlock { instrs, term: materialize_term(*term, n, bi + 1 == n) }
                })
                .collect();
            Function { name: (*name).to_owned(), params: *params, regs: REGS, blocks }
        })
        .collect()
}

/// The diagnostic codes covering each checked runtime class.
fn flags_init(codes: &[&str]) -> bool {
    codes.contains(&"E002") || codes.contains(&"W104")
}
fn flags_lock(codes: &[&str]) -> bool {
    codes.contains(&"E007") || codes.contains(&"W105")
}

fn run_strict(funcs: &[Function]) -> Result<(), VmError> {
    let program = Program::new(funcs.to_vec(), FuncId(0)).expect("generator emits valid IR");
    let config = MachineConfig {
        max_blocks: 20_000,
        max_threads: 64,
        strict_regs: true,
        ..MachineConfig::default()
    };
    Machine::new(program).with_config(config).run_native().map(|_| ())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generator (a): acceptance is sound, rejection is complete, and the
    /// verifier never panics on well-formed inputs.
    #[test]
    fn verifier_agrees_with_strict_machine(
        raw in (func_strategy(), func_strategy(), func_strategy())
    ) {
        let funcs = build_program(&[raw.0, raw.1, raw.2]);
        let report = check_functions(&funcs, FuncId(0));
        prop_assert!(!report.has_errors() || report.diagnostics.iter().any(|d| d.severity == Severity::Error));
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        match run_strict(&funcs) {
            Err(VmError::UseBeforeDef { .. }) => {
                prop_assert!(
                    flags_init(&codes),
                    "machine hit UseBeforeDef but verifier was silent: {:?}",
                    report.diagnostics
                );
            }
            Err(VmError::LockNotHeld { .. }) => {
                prop_assert!(
                    flags_lock(&codes),
                    "machine hit LockNotHeld but verifier was silent: {:?}",
                    report.diagnostics
                );
            }
            // Unchecked classes and clean runs: if the verifier reported no
            // init/lock findings, the checked classes must not have fired —
            // which this arm's very selection already witnesses.
            _ => {}
        }
        // Acceptance soundness, stated positively: no findings of a class
        // implies the machine cannot raise that class.
        if !flags_init(&codes) && !flags_lock(&codes) && !report.has_errors() {
            match run_strict(&funcs) {
                Err(VmError::UseBeforeDef { .. }) | Err(VmError::LockNotHeld { .. }) => {
                    prop_assert!(false, "accepted program raised a checked class");
                }
                _ => {}
            }
        }
    }

    /// Generator (b): on arbitrary (mostly invalid) function lists the
    /// verifier never panics and its error verdict matches `Program::new`.
    #[test]
    fn structural_verdict_matches_program_new(
        raw in prop::collection::vec(
            (
                0u16..3,                       // params
                1u16..5,                       // regs
                prop::collection::vec(
                    (
                        prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 0..4),
                        (0u8..4, any::<u8>(), any::<u8>()),
                    ),
                    0..3,
                ),
            ),
            1..4,
        ),
        entry in 0u32..5,
    ) {
        let nfuncs = raw.len();
        let funcs: Vec<Function> = raw
            .iter()
            .enumerate()
            .map(|(fi, (params, regs, blocks))| {
                let blocks = blocks
                    .iter()
                    .map(|(ops, term)| {
                        let instrs = ops
                            .iter()
                            .map(|&(kind, a, b)| wild_instr(kind, a, b, nfuncs))
                            .collect();
                        BasicBlock { instrs, term: wild_term(*term) }
                    })
                    .collect();
                Function {
                    name: format!("f{fi}"),
                    params: *params,
                    regs: *regs,
                    blocks,
                }
            })
            .collect();
        let report = check_functions(&funcs, FuncId(entry));
        let accepted = Program::new(funcs, FuncId(entry)).is_ok();
        prop_assert_eq!(
            !report.has_errors(),
            accepted,
            "verifier and Program::new disagree: {:?}",
            report.diagnostics
        );
    }
}

/// Guards the differential against vacuity: over a fixed seed sweep the
/// generator must actually produce runs that hit each checked class, runs
/// that finish cleanly, and statically rejected structures — otherwise the
/// properties above would pass without testing anything.
#[test]
fn generator_exercises_checked_classes() {
    let strat = (func_strategy(), func_strategy(), func_strategy());
    let (mut init, mut lock, mut clean) = (0u32, 0u32, 0u32);
    for seed in 0..512 {
        let mut rng = TestRng::from_seed(seed);
        let raw = Strategy::generate(&strat, &mut rng);
        let funcs = build_program(&[raw.0, raw.1, raw.2]);
        match run_strict(&funcs) {
            Err(VmError::UseBeforeDef { .. }) => init += 1,
            Err(VmError::LockNotHeld { .. }) => lock += 1,
            Ok(()) => clean += 1,
            Err(_) => {}
        }
    }
    assert!(
        init > 0 && lock > 0 && clean > 0,
        "degenerate generator: init={init} lock={lock} clean={clean}"
    );
}

/// An unconstrained instruction for generator (b): registers, targets and
/// callees may all be out of range.
fn wild_instr(kind: u8, a: u8, b: u8, nfuncs: usize) -> Instr {
    let r = |x: u8| Reg(u16::from(x) % 8);
    match kind {
        0 => Instr::Const { dst: r(a), value: i64::from(b) },
        1 => Instr::Mov { dst: r(a), src: r(b) },
        2 => Instr::Bin { op: BinOp::Add, dst: r(a), lhs: r(b), rhs: r(a.wrapping_add(b)) },
        3 => Instr::Cmp { op: CmpOp::Eq, dst: r(a), lhs: r(b), rhs: r(a.wrapping_add(b)) },
        4 => Instr::Load { dst: r(a), addr: r(b), offset: 0 },
        5 => Instr::Store { src: r(a), addr: r(b), offset: 0 },
        6 => Instr::Alloc { dst: r(a), len: r(b) },
        7 => Instr::Call {
            dst: Some(r(a)),
            func: FuncId(u32::from(b) % (nfuncs as u32 + 2)),
            args: vec![r(a); usize::from(b) % 3],
        },
        8 => Instr::Spawn {
            dst: r(a),
            func: FuncId(u32::from(b) % (nfuncs as u32 + 2)),
            args: vec![r(b); usize::from(a) % 3],
        },
        9 => Instr::Join { thread: r(a) },
        10 => Instr::Acquire { lock: r(a) },
        11 => Instr::Release { lock: r(a) },
        12 => Instr::SemInit { sem: r(a), value: r(b) },
        _ => Instr::Yield,
    }
}

/// An unconstrained terminator for generator (b).
fn wild_term(t: (u8, u8, u8)) -> Terminator {
    let (kind, x, y) = t;
    match kind {
        0 => Terminator::Jmp(BlockId(u32::from(x) % 5)),
        1 => Terminator::Br {
            cond: Reg(u16::from(x) % 8),
            then_to: BlockId(u32::from(y) % 5),
            else_to: BlockId(u32::from(y.wrapping_add(1)) % 5),
        },
        2 => Terminator::Ret { value: Some(Reg(u16::from(x) % 8)) },
        _ => Terminator::Ret { value: None },
    }
}
