//! One minimal bad program per diagnostic code: every error class and lint
//! the verifier can emit is witnessed here with its anchored coordinate.

use aprof_check::{check_functions, check_module, CheckReport, Severity};
use aprof_vm::asm;
use aprof_vm::ir::{BasicBlock, BlockId, FuncId, Function, Instr, Reg, Terminator};

fn of_asm(src: &str) -> CheckReport {
    check_module(&asm::parse_module(src).expect("witness parses"))
}

fn find<'r>(r: &'r CheckReport, code: &str) -> &'r aprof_check::Diagnostic {
    r.diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{code} not emitted: {:?}", r.diagnostics))
}

fn ret() -> Terminator {
    Terminator::Ret { value: None }
}

fn func(name: &str, params: u16, regs: u16, blocks: Vec<BasicBlock>) -> Function {
    Function { name: name.into(), params, regs, blocks }
}

#[test]
fn e002_definite_use_before_def() {
    let r = of_asm("func main() regs=4 {\nentry:\n    r0 = mov r3\n    ret\n}");
    let d = find(&r, "E002");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.func, d.block, d.instr), (0, Some(0), Some(0)));
}

#[test]
fn e003_bad_block_target_and_empty_function() {
    let bad_jump = func(
        "main",
        0,
        1,
        vec![BasicBlock { instrs: vec![], term: Terminator::Jmp(BlockId(3)) }],
    );
    let r = check_functions(&[bad_jump], FuncId(0));
    assert_eq!(find(&r, "E003").block, Some(0));

    let empty = func("main", 0, 1, vec![]);
    let r = check_functions(&[empty], FuncId(0));
    assert_eq!(find(&r, "E003").block, None);
}

#[test]
fn e004_register_out_of_range() {
    let f = func(
        "main",
        0,
        2,
        vec![BasicBlock {
            instrs: vec![Instr::Const { dst: Reg(7), value: 0 }],
            term: ret(),
        }],
    );
    let r = check_functions(&[f], FuncId(0));
    let d = find(&r, "E004");
    assert_eq!((d.block, d.instr), (Some(0), Some(0)));

    // params > regs is the function-level shape of the same class.
    let f = func("main", 0, 4, vec![BasicBlock { instrs: vec![], term: ret() }]);
    let g = func("g", 5, 2, vec![BasicBlock { instrs: vec![], term: ret() }]);
    let r = check_functions(&[f, g], FuncId(0));
    assert_eq!(find(&r, "E004").func, 1);
}

#[test]
fn e005_unknown_callee_and_arity_mismatch() {
    let unknown = func(
        "main",
        0,
        1,
        vec![BasicBlock {
            instrs: vec![Instr::Call { dst: None, func: FuncId(9), args: vec![] }],
            term: ret(),
        }],
    );
    let r = check_functions(&[unknown], FuncId(0));
    assert_eq!(find(&r, "E005").instr, Some(0));

    let caller = func(
        "main",
        0,
        2,
        vec![BasicBlock {
            instrs: vec![Instr::Call { dst: None, func: FuncId(1), args: vec![Reg(0)] }],
            term: ret(),
        }],
    );
    let callee = func("two_args", 2, 2, vec![BasicBlock { instrs: vec![], term: ret() }]);
    let r = check_functions(&[caller, callee], FuncId(0));
    assert!(find(&r, "E005").message.contains("expected 2"));
}

#[test]
fn e006_entry_errors() {
    let r = of_asm("func main(1) regs=2 {\nentry:\n    ret r0\n}");
    assert_eq!(find(&r, "E006").severity, Severity::Error);

    let f = func("f", 0, 1, vec![BasicBlock { instrs: vec![], term: ret() }]);
    let r = check_functions(&[f], FuncId(4));
    assert!(find(&r, "E006").message.contains("does not exist"));
}

#[test]
fn e007_release_never_held() {
    let r = of_asm("func main() regs=1 {\nentry:\n    r0 = const 3\n    release r0\n    ret\n}");
    assert_eq!(find(&r, "E007").instr, Some(1));
}

#[test]
fn w101_unreachable_block() {
    let r = of_asm("func main() {\nentry:\n    ret\ndead:\n    ret\n}");
    assert_eq!(find(&r, "W101").block, Some(1));
}

#[test]
fn w102_unreachable_function() {
    let r = of_asm("func main() {\nentry:\n    ret\n}\nfunc orphan() {\nentry:\n    ret\n}");
    assert_eq!(find(&r, "W102").func, 1);
}

#[test]
fn w103_unbounded_recursion() {
    let r = of_asm(
        "func main() {\nentry:\n    call spin()\n    ret\n}\n\
         func spin() {\nentry:\n    call spin()\n    ret\n}",
    );
    assert_eq!(find(&r, "W103").func, 1);
}

#[test]
fn w104_maybe_uninitialized() {
    let r = of_asm(
        "func main() regs=4 {\n\
         entry:\n    r0 = const 1\n    br r0, a, done\n\
         a:\n    r1 = const 2\n    jmp done\n\
         done:\n    r2 = mov r1\n    ret r2\n}",
    );
    assert_eq!(find(&r, "W104").severity, Severity::Warning);
}

#[test]
fn w105_maybe_unheld_release() {
    let r = of_asm(
        "func main() regs=2 {\n\
         entry:\n    r0 = const 9\n    br r0, lk, done\n\
         lk:\n    acquire r0\n    jmp done\n\
         done:\n    release r0\n    ret\n}",
    );
    assert_eq!(find(&r, "W105").severity, Severity::Warning);
}

#[test]
fn w106_thread_entry_returns_holding_lock() {
    let r = of_asm(
        "func main() regs=2 {\nentry:\n    r0 = const 9\n    acquire r0\n    ret\n}",
    );
    assert_eq!(find(&r, "W106").func, 0);
}

#[test]
fn w107_unjoined_spawn_handle() {
    let r = of_asm(
        "func main() regs=1 {\nentry:\n    r0 = spawn w()\n    ret\n}\n\
         func w() {\nentry:\n    ret\n}",
    );
    assert_eq!(find(&r, "W107").instr, Some(0));
}

#[test]
fn w108_join_on_pointer() {
    let r = of_asm(
        "func main() regs=2 {\n\
         entry:\n    r0 = const 4\n    r1 = alloc r0\n    join r1\n    ret\n}",
    );
    assert_eq!(find(&r, "W108").instr, Some(2));
}

#[test]
fn w110_implicit_terminator() {
    let r = of_asm("func main() {\nentry:\n    r0 = const 1\n}");
    assert_eq!(find(&r, "W110").block, Some(0));
}

#[test]
fn n201_static_race_candidate() {
    let r = of_asm(
        "func main() regs=4 {\n\
         entry:\n    r0 = spawn w()\n    r1 = const 8\n    r2 = const 1\n\
         \n    store r2, r1, 0\n    join r0\n    ret\n}\n\
         func w() regs=2 {\nentry:\n    r0 = const 8\n    r1 = load r0, 0\n    ret\n}",
    );
    let d = find(&r, "N201");
    assert_eq!(d.severity, Severity::Note);
    assert!(r.races.covers_addr(8));
}
