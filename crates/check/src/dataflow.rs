//! The interprocedural dataflow analysis: register initialization
//! (use-before-def), constant/allocation/handle value tracking, and a
//! lockset analysis over the concurrency primitives.
//!
//! # Lattices
//!
//! Per register the analysis tracks three facts: *may-init* (some path has
//! written it — grows under join), *must-init* (every path has written it —
//! shrinks under join), and an abstract value
//! ([`AbsVal`]: constant / allocation site / thread-handle site / unknown,
//! a flat lattice joined to [`AbsVal::Unknown`]). Uninitialized registers
//! hold `Const(0)` — the machine zero-initializes its register file, so
//! that is the truth, not an approximation.
//!
//! Per program point the analysis also tracks the *may*- and
//! *must*-locksets of constant lock keys, plus a taint bit for lock
//! operations on statically unknown keys (which silence the lock
//! diagnostics rather than risk false positives — the documented
//! limitation of the pass).
//!
//! # Interprocedural strategy
//!
//! Context-insensitive fixpoint over function summaries. Each function is
//! analyzed with an *empty* entry lockset (summaries describe the
//! function's own locking delta) and an entry register state joined over
//! every call/spawn site's arguments. Call transfer applies the callee's
//! summary: locks the callee may touch leave the caller's must-set, locks
//! the callee definitely holds at exit enter it, and the destination
//! register becomes initialized only if the callee returns a value on
//! every path (mirroring the machine, which leaves `ret_dst` untouched on
//! a bare `ret`). A separate *context* set accumulates the locks callers
//! may hold around each call site, so releasing a caller-held lock is
//! never a hard error. All joins are monotone over finite lattices, so the
//! round-robin fixpoint terminates.

use crate::cfg;
use crate::diag::{Diagnostic, Severity};
use crate::races::{self, AccessSite, Loc, RaceCandidates};
use aprof_vm::ir::{Function, Instr, Terminator};
use std::collections::BTreeSet;

/// Abstract value of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// A known constant.
    Const(i64),
    /// A pointer into the allocation made at the given site.
    Alloc(u32),
    /// The thread handle returned by the spawn at the given site.
    Handle(u32),
    /// Anything.
    Unknown,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Unknown
        }
    }
}

/// The per-point abstract state.
#[derive(Debug, Clone, PartialEq)]
struct State {
    may: Vec<bool>,
    must: Vec<bool>,
    val: Vec<AbsVal>,
    held_may: BTreeSet<i64>,
    held_must: BTreeSet<i64>,
    /// A lock operation with a statically unknown key may have happened.
    lock_unknown: bool,
}

impl State {
    /// The state at a function entry before parameters are accounted for:
    /// nothing written, every register zero.
    fn fresh(regs: usize) -> State {
        State {
            may: vec![false; regs],
            must: vec![false; regs],
            val: vec![AbsVal::Const(0); regs],
            held_may: BTreeSet::new(),
            held_must: BTreeSet::new(),
            lock_unknown: false,
        }
    }

    /// Joins `other` into `self`; true if anything changed.
    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..self.may.len() {
            let may = self.may[i] | other.may[i];
            let must = self.must[i] & other.must[i];
            let val = self.val[i].join(other.val[i]);
            changed |= may != self.may[i] || must != self.must[i] || val != self.val[i];
            self.may[i] = may;
            self.must[i] = must;
            self.val[i] = val;
        }
        let held_may_before = self.held_may.len();
        self.held_may.extend(other.held_may.iter().copied());
        changed |= self.held_may.len() != held_may_before;
        let held_must: BTreeSet<i64> =
            self.held_must.intersection(&other.held_must).copied().collect();
        changed |= held_must != self.held_must;
        self.held_must = held_must;
        if other.lock_unknown && !self.lock_unknown {
            self.lock_unknown = true;
            changed = true;
        }
        changed
    }

    fn write(&mut self, r: aprof_vm::ir::Reg, v: AbsVal) {
        let i = r.0 as usize;
        self.may[i] = true;
        self.must[i] = true;
        self.val[i] = v;
    }

    fn value(&self, r: aprof_vm::ir::Reg) -> AbsVal {
        self.val[r.0 as usize]
    }
}

/// A function's interprocedural summary.
#[derive(Debug, Clone, PartialEq, Default)]
struct Summary {
    /// Locks definitely held at every analyzed return (own acquisitions).
    exit_must: BTreeSet<i64>,
    /// Whether any return has been analyzed (before that, `exit_must` is
    /// conceptually ⊤ but treated as ∅ — sound for a must-set).
    exit_seen: bool,
    /// Constant lock keys the function (transitively) may acquire or
    /// release.
    touched_may: BTreeSet<i64>,
    /// A (transitive) lock operation on an unknown key.
    touched_unknown: bool,
    /// Join of the values returned by value-carrying `ret`s.
    ret_val: Option<AbsVal>,
}

/// Result of the dataflow passes.
pub struct Outcome {
    /// Diagnostics, unsorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Static race candidates.
    pub races: RaceCandidates,
}

/// Runs the analysis. `funcs` must be structurally clean (no `E0xx` from
/// the structure pass) — the engine indexes registers, blocks and callees
/// without rechecking.
pub fn analyze(funcs: &[Function], entry: usize) -> Outcome {
    Engine::new(funcs, entry).run()
}

struct Engine<'a> {
    funcs: &'a [Function],
    entry: usize,
    /// Alloc/spawn site ids, per function/block/instr.
    sites: Vec<Vec<Vec<Option<u32>>>>,
    /// Joined entry state per function; `None` until a call/spawn reaches
    /// it (the program entry starts populated).
    entries: Vec<Option<State>>,
    block_in: Vec<Vec<Option<State>>>,
    summaries: Vec<Summary>,
    /// Locks callers may hold around call sites of each function
    /// (absolute, transitive), plus the matching unknown-key taint.
    ctx_may: Vec<BTreeSet<i64>>,
    /// Locks every caller chain definitely holds around every call site
    /// (`None` until a first call site is seen; spawns contribute ∅ —
    /// a fresh thread holds nothing). Suppresses `W105`: releasing a lock
    /// the caller is guaranteed to hold is fine.
    ctx_must: Vec<Option<BTreeSet<i64>>>,
    ctx_unknown: Vec<bool>,
    /// Syntactic return shape per function, over CFG-reachable blocks.
    may_ret: Vec<bool>,
    must_ret: Vec<bool>,
    /// Functions that can run on a spawned thread.
    thread_side: Vec<bool>,
}

/// What the walk collects beyond diagnostics on the final reporting pass.
#[derive(Default)]
struct ReportSink {
    diags: Vec<Diagnostic>,
    accesses: Vec<AccessSite>,
    has_spawn: bool,
    spawn_sites: Vec<(u32, usize, usize, usize)>,
    joined_sites: BTreeSet<u32>,
    escaped_sites: BTreeSet<u32>,
    unknown_join: bool,
}

impl<'a> Engine<'a> {
    fn new(funcs: &'a [Function], entry: usize) -> Engine<'a> {
        let mut next_site = 0u32;
        let sites = funcs
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .map(|b| {
                        b.instrs
                            .iter()
                            .map(|i| match i {
                                Instr::Alloc { .. } | Instr::Spawn { .. } => {
                                    next_site += 1;
                                    Some(next_site - 1)
                                }
                                _ => None,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut may_ret = vec![false; funcs.len()];
        let mut must_ret = vec![false; funcs.len()];
        for (fi, f) in funcs.iter().enumerate() {
            let reach = cfg::reachable_blocks(f);
            let rets: Vec<&Terminator> = f
                .blocks
                .iter()
                .zip(&reach)
                .filter(|(_, &r)| r)
                .map(|(b, _)| &b.term)
                .filter(|t| matches!(t, Terminator::Ret { .. }))
                .collect();
            may_ret[fi] = rets.iter().any(|t| matches!(t, Terminator::Ret { value: Some(_) }));
            // Vacuously true with no reachable ret: the call never returns,
            // so the post-call state is unreachable anyway.
            must_ret[fi] =
                rets.iter().all(|t| matches!(t, Terminator::Ret { value: Some(_) }));
        }
        let thread_side = cfg::closure(&cfg::callees(funcs), cfg::spawn_targets(funcs));
        let mut entries = vec![None; funcs.len()];
        let mut ctx_must = vec![None; funcs.len()];
        if let Some(f) = funcs.get(entry) {
            entries[entry] = Some(State::fresh(f.regs as usize));
            ctx_must[entry] = Some(BTreeSet::new());
        }
        Engine {
            funcs,
            entry,
            sites,
            entries,
            block_in: funcs.iter().map(|f| vec![None; f.blocks.len()]).collect(),
            summaries: vec![Summary::default(); funcs.len()],
            ctx_may: vec![BTreeSet::new(); funcs.len()],
            ctx_must,
            ctx_unknown: vec![false; funcs.len()],
            may_ret,
            must_ret,
            thread_side,
        }
    }

    fn run(mut self) -> Outcome {
        // Global rounds until quiescence; every lattice component is
        // finite and every update monotone, so this terminates.
        let mut rounds = 0usize;
        loop {
            let mut changed = false;
            for f in 0..self.funcs.len() {
                if self.entries[f].is_some() {
                    changed |= self.analyze_function(f);
                }
            }
            rounds += 1;
            debug_assert!(rounds < 10_000, "dataflow failed to converge");
            if !changed || rounds >= 10_000 {
                break;
            }
        }
        self.report()
    }

    /// One intra-procedural pass over `f` with the current summaries;
    /// true if any stored state, entry contribution or summary changed.
    fn analyze_function(&mut self, f: usize) -> bool {
        let func = &self.funcs[f];
        let mut changed = false;
        let entry = self.entries[f].clone().expect("analyzed functions are reached");
        match &mut self.block_in[f][0] {
            slot @ None => {
                *slot = Some(entry);
                changed = true;
            }
            Some(st) => changed |= st.join_from(&entry),
        }
        let mut work: Vec<usize> =
            (0..func.blocks.len()).filter(|&b| self.block_in[f][b].is_some()).collect();
        while let Some(b) = work.pop() {
            let mut st = self.block_in[f][b].clone().expect("worklist holds reached blocks");
            for (ii, instr) in self.funcs[f].blocks[b].instrs.iter().enumerate() {
                changed |= self.step(f, b, ii, instr, &mut st, None);
            }
            let term = &self.funcs[f].blocks[b].term;
            match term {
                Terminator::Ret { value } => {
                    let s = &mut self.summaries[f];
                    let before = s.clone();
                    if s.exit_seen {
                        s.exit_must =
                            s.exit_must.intersection(&st.held_must).copied().collect();
                    } else {
                        s.exit_must = st.held_must.clone();
                        s.exit_seen = true;
                    }
                    if let Some(r) = value {
                        let v = st.value(*r);
                        s.ret_val = Some(match s.ret_val {
                            None => v,
                            Some(old) => old.join(v),
                        });
                    }
                    changed |= *s != before;
                }
                _ => {
                    for succ in cfg::successors(term, self.funcs[f].blocks.len()) {
                        let grew = match &mut self.block_in[f][succ] {
                            slot @ None => {
                                *slot = Some(st.clone());
                                true
                            }
                            Some(dst) => dst.join_from(&st),
                        };
                        if grew {
                            changed = true;
                            if !work.contains(&succ) {
                                work.push(succ);
                            }
                        }
                    }
                }
            }
        }
        changed
    }

    /// Transfers `instr` over `st`. Interprocedural side effects (entry
    /// contributions, context locksets, summary growth) are applied in
    /// both modes; diagnostics and access collection only happen when a
    /// [`ReportSink`] is supplied.
    fn step(
        &mut self,
        f: usize,
        b: usize,
        ii: usize,
        instr: &Instr,
        st: &mut State,
        mut sink: Option<&mut ReportSink>,
    ) -> bool {
        let mut changed = false;
        if let Some(sink) = sink.as_deref_mut() {
            let mut uses = Vec::new();
            instr.uses_into(&mut uses);
            for r in uses {
                self.check_use(f, b, ii, r, st, sink);
            }
        }
        let site = self.sites[f][b][ii];
        match instr {
            Instr::Const { dst, value } => st.write(*dst, AbsVal::Const(*value)),
            Instr::Mov { dst, src } => {
                let v = st.value(*src);
                st.write(*dst, v);
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let v = match (st.value(*lhs), st.value(*rhs)) {
                    (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(op.eval(a, b)),
                    // Pointer arithmetic stays within the allocation for
                    // the alias analysis' purposes.
                    (AbsVal::Alloc(s), AbsVal::Const(_))
                    | (AbsVal::Const(_), AbsVal::Alloc(s))
                        if matches!(op, aprof_vm::ir::BinOp::Add | aprof_vm::ir::BinOp::Sub) =>
                    {
                        AbsVal::Alloc(s)
                    }
                    _ => AbsVal::Unknown,
                };
                st.write(*dst, v);
            }
            Instr::Cmp { op, dst, lhs, rhs } => {
                let v = match (st.value(*lhs), st.value(*rhs)) {
                    (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(op.eval(a, b)),
                    _ => AbsVal::Unknown,
                };
                st.write(*dst, v);
            }
            Instr::Load { dst, addr, offset } => {
                if let Some(sink) = sink.as_deref_mut() {
                    self.record_access(f, b, ii, st, st.value(*addr), Some(*offset), false, sink);
                }
                st.write(*dst, AbsVal::Unknown);
            }
            Instr::Store { src, addr, offset } => {
                if let Some(sink) = sink.as_deref_mut() {
                    self.record_access(f, b, ii, st, st.value(*addr), Some(*offset), true, sink);
                    if let AbsVal::Handle(s) = st.value(*src) {
                        sink.escaped_sites.insert(s);
                    }
                }
            }
            Instr::Alloc { dst, .. } => {
                st.write(*dst, AbsVal::Alloc(site.expect("alloc has a site id")));
            }
            Instr::Call { .. } | Instr::Spawn { .. } => {
                let (func, args) = instr.callee().expect("call-like instruction");
                let callee = func.index();
                // Parameters: joined over call sites; the rest of the
                // callee's register file is fixed at "uninitialized zero".
                let mut contrib = State::fresh(self.funcs[callee].regs as usize);
                for (i, a) in args.iter().enumerate() {
                    contrib.write(aprof_vm::ir::Reg(i as u16), st.value(*a));
                }
                changed |= match &mut self.entries[callee] {
                    slot @ None => {
                        *slot = Some(contrib);
                        true
                    }
                    Some(dst) => dst.join_from(&contrib),
                };
                if let Some(sink) = sink.as_deref_mut() {
                    for a in args {
                        if let AbsVal::Handle(s) = st.value(*a) {
                            sink.escaped_sites.insert(s);
                        }
                    }
                }
                let spawn = matches!(instr, Instr::Spawn { .. });
                if spawn {
                    // A fresh thread starts holding nothing: the callee's
                    // guaranteed caller-held set collapses to ∅.
                    match &mut self.ctx_must[callee] {
                        slot @ None => {
                            *slot = Some(BTreeSet::new());
                            changed = true;
                        }
                        Some(cur) => {
                            if !cur.is_empty() {
                                cur.clear();
                                changed = true;
                            }
                        }
                    }
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.has_spawn = true;
                        sink.spawn_sites.push((
                            site.expect("spawn has a site id"),
                            f,
                            b,
                            ii,
                        ));
                    }
                    if let Instr::Spawn { dst, .. } = instr {
                        st.write(*dst, AbsVal::Handle(site.expect("spawn has a site id")));
                    }
                } else {
                    // Context locks: everything this caller may hold (own
                    // or inherited) is held around the callee. Spawned
                    // threads start with nothing held, so spawns
                    // contribute no context.
                    let inherit: BTreeSet<i64> = st
                        .held_may
                        .iter()
                        .chain(self.ctx_may[f].iter())
                        .copied()
                        .collect();
                    let before = self.ctx_may[callee].len();
                    self.ctx_may[callee].extend(inherit);
                    changed |= self.ctx_may[callee].len() != before;
                    let inherit_must: BTreeSet<i64> = st
                        .held_must
                        .iter()
                        .chain(self.ctx_must[f].iter().flatten())
                        .copied()
                        .collect();
                    match &mut self.ctx_must[callee] {
                        slot @ None => {
                            *slot = Some(inherit_must);
                            changed = true;
                        }
                        Some(cur) => {
                            let narrowed: BTreeSet<i64> =
                                cur.intersection(&inherit_must).copied().collect();
                            if narrowed != *cur {
                                *cur = narrowed;
                                changed = true;
                            }
                        }
                    }
                    let taint = st.lock_unknown || self.ctx_unknown[f];
                    if taint && !self.ctx_unknown[callee] {
                        self.ctx_unknown[callee] = true;
                        changed = true;
                    }
                    // Apply the callee's locking delta.
                    let summary = self.summaries[callee].clone();
                    if summary.touched_unknown {
                        st.held_must = summary.exit_must.clone();
                        st.lock_unknown = true;
                    } else {
                        st.held_must.retain(|k| !summary.touched_may.contains(k));
                        st.held_must.extend(summary.exit_must.iter().copied());
                    }
                    st.held_may.extend(summary.touched_may.iter().copied());
                    // The callee's lock footprint becomes part of ours.
                    let own = &mut self.summaries[f];
                    let before = own.touched_may.len();
                    own.touched_may.extend(summary.touched_may.iter().copied());
                    changed |= own.touched_may.len() != before;
                    if summary.touched_unknown && !own.touched_unknown {
                        own.touched_unknown = true;
                        changed = true;
                    }
                    if let Instr::Call { dst: Some(d), .. } = instr {
                        let ret = self.summaries[callee].ret_val.unwrap_or(AbsVal::Unknown);
                        if self.must_ret[callee] {
                            st.write(*d, ret);
                        } else if self.may_ret[callee] {
                            let i = d.0 as usize;
                            st.may[i] = true;
                            st.val[i] = st.val[i].join(ret);
                        }
                    }
                }
            }
            Instr::Join { thread } => {
                if let Some(sink) = sink.as_deref_mut() {
                    match st.value(*thread) {
                        AbsVal::Handle(s) => {
                            sink.joined_sites.insert(s);
                        }
                        AbsVal::Alloc(_) => sink.diags.push(Diagnostic {
                            severity: Severity::Warning,
                            code: "W108",
                            func: f,
                            block: Some(b),
                            instr: Some(ii),
                            message: format!(
                                "`join` on r{} which holds a pointer, not a thread handle",
                                thread.0
                            ),
                        }),
                        _ => sink.unknown_join = true,
                    }
                }
            }
            Instr::Acquire { lock } => match st.value(*lock) {
                AbsVal::Const(k) => {
                    st.held_may.insert(k);
                    st.held_must.insert(k);
                    let own = &mut self.summaries[f];
                    changed |= own.touched_may.insert(k);
                }
                _ => {
                    st.lock_unknown = true;
                    let own = &mut self.summaries[f];
                    if !own.touched_unknown {
                        own.touched_unknown = true;
                        changed = true;
                    }
                }
            },
            Instr::Release { lock } => match st.value(*lock) {
                AbsVal::Const(k) => {
                    if let Some(sink) = sink.as_deref_mut() {
                        let caller_may_hold =
                            self.ctx_may[f].contains(&k) || self.ctx_unknown[f];
                        let caller_must_hold = self.ctx_must[f]
                            .as_ref()
                            .is_some_and(|s| s.contains(&k))
                            || self.ctx_unknown[f];
                        if !st.held_may.contains(&k) && !st.lock_unknown && !caller_may_hold {
                            sink.diags.push(Diagnostic {
                                severity: Severity::Error,
                                code: "E007",
                                func: f,
                                block: Some(b),
                                instr: Some(ii),
                                message: format!(
                                    "release of lock {k} which cannot be held here"
                                ),
                            });
                        } else if !st.held_must.contains(&k) && !caller_must_hold {
                            sink.diags.push(Diagnostic {
                                severity: Severity::Warning,
                                code: "W105",
                                func: f,
                                block: Some(b),
                                instr: Some(ii),
                                message: format!(
                                    "lock {k} may not be held on every path to this release"
                                ),
                            });
                        }
                    }
                    st.held_may.remove(&k);
                    st.held_must.remove(&k);
                    let own = &mut self.summaries[f];
                    changed |= own.touched_may.insert(k);
                }
                _ => {
                    // An unknown key may release any held lock.
                    st.held_must.clear();
                    st.lock_unknown = true;
                    let own = &mut self.summaries[f];
                    if !own.touched_unknown {
                        own.touched_unknown = true;
                        changed = true;
                    }
                }
            },
            Instr::SemInit { .. }
            | Instr::SemPost { .. }
            | Instr::SemWait { .. }
            | Instr::Yield => {}
            Instr::SysRead { dst, buf, len, .. } => {
                if let Some(sink) = sink.as_deref_mut() {
                    self.record_sys(f, b, ii, st, *buf, *len, true, sink);
                }
                st.write(*dst, AbsVal::Unknown);
            }
            Instr::SysWrite { dst, buf, len, .. } => {
                if let Some(sink) = sink {
                    self.record_sys(f, b, ii, st, *buf, *len, false, sink);
                }
                st.write(*dst, AbsVal::Unknown);
            }
        }
        changed
    }

    fn check_use(
        &self,
        f: usize,
        b: usize,
        ii: usize,
        r: aprof_vm::ir::Reg,
        st: &State,
        sink: &mut ReportSink,
    ) {
        let i = r.0 as usize;
        if !st.may[i] {
            sink.diags.push(Diagnostic {
                severity: Severity::Error,
                code: "E002",
                func: f,
                block: Some(b),
                instr: Some(ii),
                message: format!("r{} is read but never written on any path here", r.0),
            });
        } else if !st.must[i] {
            sink.diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "W104",
                func: f,
                block: Some(b),
                instr: Some(ii),
                message: format!("r{} may be read before initialization on some path", r.0),
            });
        }
    }

    fn check_term_uses(
        &self,
        f: usize,
        b: usize,
        nn: usize,
        term: &Terminator,
        st: &State,
        sink: &mut ReportSink,
    ) {
        match term {
            Terminator::Br { cond, .. } => self.check_use(f, b, nn, *cond, st, sink),
            Terminator::Ret { value: Some(r) } => self.check_use(f, b, nn, *r, st, sink),
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)] // site coordinates + access shape
    fn record_access(
        &self,
        f: usize,
        b: usize,
        ii: usize,
        st: &State,
        addr: AbsVal,
        offset: Option<i64>,
        write: bool,
        sink: &mut ReportSink,
    ) {
        let loc = match addr {
            AbsVal::Const(c) => Loc::Cell(c.wrapping_add(offset.unwrap_or(0))),
            AbsVal::Alloc(s) => Loc::Region(s),
            _ => Loc::Any,
        };
        sink.accesses.push(AccessSite {
            func: f,
            block: b,
            instr: ii,
            write,
            loc,
            locks: st.held_must.clone(),
            thread_side: self.thread_side[f],
        });
    }

    /// Records the guest-memory side of a syscall: `sys_read` fills the
    /// buffer (kernel writes), `sys_write` drains it (kernel reads).
    #[allow(clippy::too_many_arguments)] // site coordinates + buffer shape
    fn record_sys(
        &self,
        f: usize,
        b: usize,
        ii: usize,
        st: &State,
        buf: aprof_vm::ir::Reg,
        len: aprof_vm::ir::Reg,
        write: bool,
        sink: &mut ReportSink,
    ) {
        const MAX_CELLS: i64 = 256;
        match (st.value(buf), st.value(len)) {
            (AbsVal::Const(base), AbsVal::Const(n)) if (0..=MAX_CELLS).contains(&n) => {
                for i in 0..n {
                    self.record_access(
                        f,
                        b,
                        ii,
                        st,
                        AbsVal::Const(base.wrapping_add(i)),
                        None,
                        write,
                        sink,
                    );
                }
            }
            (v, _) => self.record_access(f, b, ii, st, v, None, write, sink),
        }
    }

    /// The final pass: replay every reached block from its fixpoint
    /// in-state, emitting diagnostics and collecting memory accesses.
    fn report(mut self) -> Outcome {
        let mut sink = ReportSink::default();
        let thread_entries: BTreeSet<usize> = cfg::spawn_targets(self.funcs)
            .into_iter()
            .chain([self.entry])
            .collect();
        for f in 0..self.funcs.len() {
            if self.entries[f].is_none() {
                sink.diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "W102",
                    func: f,
                    block: None,
                    instr: None,
                    message: format!(
                        "function `{}` is never called from reachable code",
                        self.funcs[f].name
                    ),
                });
                continue;
            }
            if cfg::unbounded_recursion(&self.funcs[f], f) {
                sink.diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "W103",
                    func: f,
                    block: None,
                    instr: None,
                    message: format!(
                        "`{}` recurses on every path and can only exhaust the stack",
                        self.funcs[f].name
                    ),
                });
            }
            for b in 0..self.funcs[f].blocks.len() {
                let Some(mut st) = self.block_in[f][b].clone() else {
                    sink.diags.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "W101",
                        func: f,
                        block: Some(b),
                        instr: None,
                        message: format!("bb{b} is unreachable"),
                    });
                    continue;
                };
                let nn = self.funcs[f].blocks[b].instrs.len();
                for ii in 0..nn {
                    let instr = &self.funcs[f].blocks[b].instrs[ii];
                    self.step(f, b, ii, instr, &mut st, Some(&mut sink));
                }
                let term = &self.funcs[f].blocks[b].term;
                self.check_term_uses(f, b, nn, term, &st, &mut sink);
                if let Terminator::Ret { .. } = term {
                    if thread_entries.contains(&f) && !st.held_must.is_empty() {
                        let locks: Vec<String> =
                            st.held_must.iter().map(|k| k.to_string()).collect();
                        sink.diags.push(Diagnostic {
                            severity: Severity::Warning,
                            code: "W106",
                            func: f,
                            block: Some(b),
                            instr: None,
                            message: format!(
                                "thread entry `{}` returns still holding lock(s) {}",
                                self.funcs[f].name,
                                locks.join(", ")
                            ),
                        });
                    }
                }
            }
        }
        // Fork/join pairing: a spawn whose handle is never joined and never
        // escapes is suspicious. Joins on unknown values (e.g. handles
        // reloaded from memory) make the pairing undecidable — stay quiet.
        if !sink.unknown_join {
            for &(s, f, b, ii) in &sink.spawn_sites {
                if !sink.joined_sites.contains(&s) && !sink.escaped_sites.contains(&s) {
                    sink.diags.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "W107",
                        func: f,
                        block: Some(b),
                        instr: Some(ii),
                        message: "spawned thread's handle is never joined".into(),
                    });
                }
            }
        }
        let (race_diags, races) = races::find_candidates(&sink.accesses, sink.has_spawn);
        sink.diags.extend(race_diags);
        Outcome { diagnostics: sink.diags, races }
    }
}
