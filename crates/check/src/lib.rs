//! aprof-check: a static verifier and lint pass over the guest IR.
//!
//! The profiler's dynamic tools (`aprof-tools`) observe one execution; this
//! crate complements them with whole-program static analysis that runs
//! before any execution. It rejects programs that cannot run meaningfully
//! (hard errors `E0xx`) and warns about ones that probably do the wrong
//! thing (lints `W1xx`), including a lockset pass whose race candidates
//! (`N201` notes) are a static over-approximation of what the dynamic
//! `HelgrindTool` can observe.
//!
//! Entry points:
//!
//! - [`check_program`] — verify an already-validated [`Program`].
//! - [`check_functions`] — verify a raw function list that `Program::new`
//!   has *not* seen; structural errors come back as located diagnostics
//!   instead of a fail-fast [`ProgramError`](aprof_vm::ir::ProgramError).
//! - [`check_module`] — verify a parsed assembly [`Module`], adding the
//!   asm-only lints (implicit `ret`).
//!
//! The analyses and the diagnostic code table are documented in
//! DESIGN.md §7.
//!
//! # Example
//!
//! ```
//! use aprof_vm::asm;
//!
//! let module = asm::parse_module(
//!     "func main() regs=2 {\nentry:\n    r0 = const 7\n    ret r0\n}\n",
//! )
//! .unwrap();
//! let report = aprof_check::check_module(&module);
//! assert!(!report.has_errors());
//! assert_eq!(report.stats.functions, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod codes;
pub mod dataflow;
pub mod diag;
pub mod races;
pub mod structure;

pub use codes::{explain, CodeDoc, CODES};
pub use diag::{render_parse_error, Diagnostic, Severity};
pub use races::RaceCandidates;

use aprof_vm::asm::Module;
use aprof_vm::ir::{FuncId, Function, Program, Terminator};

/// Size counters for the verified program, for throughput reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of functions.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total instructions (terminators included).
    pub instrs: usize,
}

/// Everything the verifier found out about one program.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All diagnostics, sorted by (function, block, instruction, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Static race candidates from the lockset pass.
    pub races: RaceCandidates,
    /// Program size counters.
    pub stats: CheckStats,
    /// Function names, indexed by function id — for rendering.
    pub names: Vec<String>,
}

impl CheckReport {
    /// Whether any hard error was found (the program is rejected).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether the program is rejected under the given lint policy:
    /// errors always reject; with `deny_lints`, warnings reject too.
    /// Notes (`N2xx`) never reject.
    pub fn rejects(&self, deny_lints: bool) -> bool {
        self.diagnostics.iter().any(|d| {
            d.severity == Severity::Error
                || (deny_lints && d.severity == Severity::Warning)
        })
    }

    /// Count of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }
}

fn stats_of(funcs: &[Function]) -> CheckStats {
    CheckStats {
        functions: funcs.len(),
        blocks: funcs.iter().map(|f| f.blocks.len()).sum(),
        instrs: funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.instrs.len() + 1)
            .sum(),
    }
}

/// Verifies a raw function list with the given entry.
///
/// Runs the structural pass first; if it reports any hard error the
/// dataflow passes are skipped entirely (their indexing assumes a
/// structurally clean program), and only the structural errors are
/// reported. Otherwise the dataflow and race passes run and their lints
/// and notes are merged in.
pub fn check_functions(funcs: &[Function], entry: FuncId) -> CheckReport {
    let mut report = CheckReport {
        stats: stats_of(funcs),
        names: funcs.iter().map(|f| f.name.clone()).collect(),
        ..CheckReport::default()
    };
    report.diagnostics = structure::check(funcs, entry);
    if !report.has_errors() {
        let outcome = dataflow::analyze(funcs, entry.index());
        report.diagnostics.extend(outcome.diagnostics);
        report.races = outcome.races;
    }
    report
        .diagnostics
        .sort_by_key(|d| (d.func, d.block, d.instr, d.code));
    report
}

/// Verifies an already-validated [`Program`].
///
/// `Program::new` has guaranteed structural soundness, so this mostly
/// exercises the dataflow and race passes — but the structural pass still
/// runs (cheaply) to keep one code path.
pub fn check_program(program: &Program) -> CheckReport {
    check_functions(program.functions(), program.entry())
}

/// Verifies a parsed assembly [`Module`], adding the asm-only lint `W110`
/// for blocks that fall off the end without a written terminator (the
/// parser supplies an implicit bare `ret`).
pub fn check_module(module: &Module) -> CheckReport {
    let mut report = check_functions(&module.functions, module.entry);
    for (fi, fs) in module.map.functions.iter().enumerate() {
        for (bi, bs) in fs.blocks.iter().enumerate() {
            if bs.term_line.is_none() {
                let is_ret = module
                    .functions
                    .get(fi)
                    .and_then(|f| f.blocks.get(bi))
                    .map(|b| matches!(b.term, Terminator::Ret { value: None }))
                    .unwrap_or(false);
                if is_ret {
                    report.diagnostics.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "W110",
                        func: fi,
                        block: Some(bi),
                        instr: None,
                        message: "block has no terminator; an implicit bare `ret` was assumed"
                            .into(),
                    });
                }
            }
        }
    }
    report
        .diagnostics
        .sort_by_key(|d| (d.func, d.block, d.instr, d.code));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::asm;

    fn report_of(src: &str) -> CheckReport {
        check_module(&asm::parse_module(src).unwrap())
    }

    fn codes(r: &CheckReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let r = report_of(
            "func main() {\nentry:\n    r0 = const 1\n    r1 = add r0, r0\n    ret r1\n}",
        );
        assert!(codes(&r).is_empty(), "{:?}", r.diagnostics);
        assert!(!r.rejects(true));
        assert_eq!(r.stats.functions, 1);
    }

    #[test]
    fn use_before_def_is_e002() {
        let r = report_of("func main() regs=4 {\nentry:\n    r0 = add r2, r2\n    ret\n}");
        assert!(codes(&r).contains(&"E002"), "{:?}", r.diagnostics);
        assert!(r.has_errors());
    }

    #[test]
    fn maybe_uninit_is_w104() {
        let r = report_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = const 0\n    br r0, a, b\n\
             a:\n    r1 = const 1\n    jmp done\n\
             b:\n    jmp done\n\
             done:\n    r2 = add r1, r1\n    ret r2\n}",
        );
        assert!(codes(&r).contains(&"W104"), "{:?}", r.diagnostics);
        assert!(!r.has_errors());
        assert!(r.rejects(true) && !r.rejects(false));
    }

    #[test]
    fn release_unheld_is_e007() {
        let r = report_of(
            "func main() regs=2 {\nentry:\n    r0 = const 7\n    release r0\n    ret\n}",
        );
        assert!(codes(&r).contains(&"E007"), "{:?}", r.diagnostics);
    }

    #[test]
    fn helper_releasing_callers_lock_is_not_an_error() {
        let r = report_of(
            "func main() regs=2 {\n\
             entry:\n    r0 = const 7\n    acquire r0\n    call unlocker()\n    release r0\n    ret\n}\n\
             func unlocker() regs=1 {\n\
             entry:\n    r0 = const 7\n    release r0\n    ret\n}",
        );
        assert!(!codes(&r).contains(&"E007"), "{:?}", r.diagnostics);
    }

    #[test]
    fn unreachable_block_and_function_lints() {
        let r = report_of(
            "func main() {\nentry:\n    ret\nisland:\n    ret\n}\n\
             func nobody_calls_me() {\nentry:\n    ret\n}",
        );
        let c = codes(&r);
        assert!(c.contains(&"W101"), "{:?}", r.diagnostics);
        assert!(c.contains(&"W102"), "{:?}", r.diagnostics);
    }

    #[test]
    fn implicit_ret_is_w110_for_modules_only() {
        let src = "func main() {\nentry:\n    r0 = const 1\n}";
        let r = report_of(src);
        assert!(codes(&r).contains(&"W110"), "{:?}", r.diagnostics);
        let p = asm::parse(src).unwrap();
        let r2 = check_program(&p);
        assert!(!codes(&r2).contains(&"W110"));
    }

    #[test]
    fn racy_counter_is_noted_and_locked_counter_is_not() {
        let racy = report_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = spawn worker()\n    r1 = const 100\n    r2 = const 1\n\
             \n    store r2, r1, 0\n    join r0\n    ret\n}\n\
             func worker() regs=2 {\n\
             entry:\n    r0 = const 100\n    r1 = load r0, 0\n    ret\n}",
        );
        assert!(codes(&racy).contains(&"N201"), "{:?}", racy.diagnostics);
        assert!(racy.races.covers_addr(100));
        assert!(!racy.rejects(true), "notes must not reject");

        let locked = report_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = spawn worker()\n    r3 = const 9\n    acquire r3\n\
             \n    r1 = const 100\n    r2 = const 1\n    store r2, r1, 0\n\
             \n    release r3\n    join r0\n    ret\n}\n\
             func worker() regs=2 {\n\
             entry:\n    r1 = const 9\n    acquire r1\n    r0 = const 100\n\
             \n    r0 = load r0, 0\n    r1 = const 9\n    release r1\n    ret\n}",
        );
        assert!(!codes(&locked).contains(&"N201"), "{:?}", locked.diagnostics);
        assert!(locked.races.is_empty());
    }

    #[test]
    fn unjoined_spawn_is_w107() {
        let r = report_of(
            "func main() regs=2 {\nentry:\n    r0 = spawn worker()\n    ret\n}\n\
             func worker() {\nentry:\n    ret\n}",
        );
        assert!(codes(&r).contains(&"W107"), "{:?}", r.diagnostics);
    }

    #[test]
    fn always_recursing_is_w103() {
        let r = report_of(
            "func main() {\nentry:\n    call f()\n    ret\n}\n\
             func f() {\nentry:\n    call f()\n    ret\n}",
        );
        assert!(codes(&r).contains(&"W103"), "{:?}", r.diagnostics);
    }

    #[test]
    fn structural_errors_suppress_dataflow() {
        use aprof_vm::ir::{BasicBlock, BinOp, BlockId, Instr, Reg};
        // The jump target is bogus AND r5 is out of range: only structural
        // codes may appear, never dataflow ones. (The asm front end cannot
        // produce this — it resolves labels — so build the IR directly.)
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 2,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Bin {
                    op: BinOp::Add,
                    dst: Reg(1),
                    lhs: Reg(5),
                    rhs: Reg(5),
                }],
                term: Terminator::Jmp(BlockId(9)),
            }],
        };
        let r = check_functions(&[f], FuncId(0));
        assert!(r.has_errors());
        for d in &r.diagnostics {
            assert!(d.code.starts_with("E0"), "unexpected {d:?}");
        }
    }

    #[test]
    fn interprocedural_lock_key_constant_propagates() {
        // The lock key travels through a parameter; the balanced pair must
        // be recognized (no W105/E007) and the store is protected.
        let r = report_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = spawn worker()\n    r1 = const 900\n    call work(r1)\n\
             \n    join r0\n    ret\n}\n\
             func worker() regs=2 {\n\
             entry:\n    r0 = const 900\n    call work(r0)\n    ret\n}\n\
             func work(1) regs=4 {\n\
             entry:\n    acquire r0\n    r1 = const 64\n    r2 = const 1\n\
             \n    store r2, r1, 0\n    release r0\n    ret\n}",
        );
        let c = codes(&r);
        assert!(!c.contains(&"E007") && !c.contains(&"W105"), "{:?}", r.diagnostics);
        assert!(!c.contains(&"N201"), "{:?}", r.diagnostics);
    }
}
