//! Control-flow and call-graph structure: block reachability, function
//! reachability, spawn closures and the unbounded-recursion check.
//!
//! Everything here is defensive: the inputs may be structurally invalid
//! (that is the verifier's whole point), so out-of-range block targets and
//! function ids are treated as absent edges rather than panics.

use aprof_vm::ir::{Function, Instr, Terminator};

/// Successor block indices of a terminator, in-range ones only.
pub fn successors(term: &Terminator, nblocks: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    match term {
        Terminator::Jmp(b) => out.push(b.index()),
        Terminator::Br { then_to, else_to, .. } => {
            out.push(then_to.index());
            out.push(else_to.index());
        }
        Terminator::Ret { .. } => {}
    }
    out.retain(|&b| b < nblocks);
    out.dedup();
    out
}

/// Per-block reachability from block 0.
pub fn reachable_blocks(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    if n > 0 {
        seen[0] = true;
        stack.push(0usize);
    }
    while let Some(b) = stack.pop() {
        for s in successors(&f.blocks[b].term, n) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Direct callees (calls and spawns, in-range only) of every function.
pub fn callees(funcs: &[Function]) -> Vec<Vec<usize>> {
    funcs
        .iter()
        .map(|f| {
            let mut out: Vec<usize> = f
                .blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter_map(|i| i.callee())
                .map(|(id, _)| id.index())
                .filter(|&id| id < funcs.len())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect()
}

/// Transitive closure of `roots` over the call graph.
pub fn closure(graph: &[Vec<usize>], roots: impl IntoIterator<Item = usize>) -> Vec<bool> {
    let mut seen = vec![false; graph.len()];
    let mut stack: Vec<usize> = roots.into_iter().filter(|&r| r < graph.len()).collect();
    for &r in &stack {
        seen[r] = true;
    }
    while let Some(f) = stack.pop() {
        for &c in &graph[f] {
            if !seen[c] {
                seen[c] = true;
                stack.push(c);
            }
        }
    }
    seen
}

/// The functions used as spawn targets anywhere (in-range only).
pub fn spawn_targets(funcs: &[Function]) -> Vec<usize> {
    let mut out: Vec<usize> = funcs
        .iter()
        .flat_map(|f| f.blocks.iter().flat_map(|b| &b.instrs))
        .filter_map(|i| match i {
            Instr::Spawn { func, .. } if func.index() < funcs.len() => Some(func.index()),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether `f` (function index `idx`) recurses into itself on *every* path:
/// no `ret` is reachable from the entry block without first executing a
/// direct recursive call. Such a function can only exhaust the stack.
///
/// Ordinary recursion with a base case has a recursion-free path to some
/// `ret` and is not flagged.
pub fn unbounded_recursion(f: &Function, idx: usize) -> bool {
    let n = f.blocks.len();
    if n == 0 {
        return false;
    }
    let recursive_block = |b: &aprof_vm::ir::BasicBlock| {
        b.instrs.iter().any(|i| matches!(i.callee(), Some((id, _)) if id.index() == idx))
    };
    if !f.blocks.iter().any(recursive_block) {
        return false;
    }
    // Walk the CFG skipping past any block that contains a recursive call:
    // control cannot get beyond that call without recursing.
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        let block = &f.blocks[b];
        if recursive_block(block) {
            continue;
        }
        if matches!(block.term, Terminator::Ret { .. }) {
            return false; // a recursion-free path reaches a ret
        }
        for s in successors(&block.term, n) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::asm;

    fn func_of(src: &str) -> Vec<Function> {
        asm::parse_module(src).unwrap().functions
    }

    #[test]
    fn unreachable_block_detected() {
        let fs = func_of("func main() {\ne:\n ret\nisland:\n ret\n}");
        let r = reachable_blocks(&fs[0]);
        assert_eq!(r, vec![true, false]);
    }

    #[test]
    fn base_case_recursion_not_flagged() {
        let fs = func_of(
            "func main() {\ne:\n ret\n}\n\
             func f(1) {\ne:\n br r0, rec, base\nrec:\n r1 = call f(r0)\n ret r1\nbase:\n ret r0\n}",
        );
        assert!(!unbounded_recursion(&fs[1], 1));
    }

    #[test]
    fn always_recursing_flagged() {
        let fs = func_of(
            "func main() {\ne:\n ret\n}\nfunc f(1) {\ne:\n r1 = call f(r0)\n ret r1\n}",
        );
        assert!(unbounded_recursion(&fs[1], 1));
    }
}
