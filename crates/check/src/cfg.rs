//! Control-flow and call-graph structure: block reachability, function
//! reachability, spawn closures and the unbounded-recursion check.
//!
//! Everything here is defensive: the inputs may be structurally invalid
//! (that is the verifier's whole point), so out-of-range block targets and
//! function ids are treated as absent edges rather than panics.

use aprof_vm::ir::{Function, Instr, Terminator};

/// Successor block indices of a terminator, in-range ones only.
pub fn successors(term: &Terminator, nblocks: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    match term {
        Terminator::Jmp(b) => out.push(b.index()),
        Terminator::Br { then_to, else_to, .. } => {
            out.push(then_to.index());
            out.push(else_to.index());
        }
        Terminator::Ret { .. } => {}
    }
    out.retain(|&b| b < nblocks);
    out.dedup();
    out
}

/// Per-block reachability from block 0.
pub fn reachable_blocks(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    if n > 0 {
        seen[0] = true;
        stack.push(0usize);
    }
    while let Some(b) = stack.pop() {
        for s in successors(&f.blocks[b].term, n) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Direct callees (calls and spawns, in-range only) of every function.
pub fn callees(funcs: &[Function]) -> Vec<Vec<usize>> {
    funcs
        .iter()
        .map(|f| {
            let mut out: Vec<usize> = f
                .blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .filter_map(|i| i.callee())
                .map(|(id, _)| id.index())
                .filter(|&id| id < funcs.len())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect()
}

/// Transitive closure of `roots` over the call graph.
pub fn closure(graph: &[Vec<usize>], roots: impl IntoIterator<Item = usize>) -> Vec<bool> {
    let mut seen = vec![false; graph.len()];
    let mut stack: Vec<usize> = roots.into_iter().filter(|&r| r < graph.len()).collect();
    for &r in &stack {
        seen[r] = true;
    }
    while let Some(f) = stack.pop() {
        for &c in &graph[f] {
            if !seen[c] {
                seen[c] = true;
                stack.push(c);
            }
        }
    }
    seen
}

/// The functions used as spawn targets anywhere (in-range only).
pub fn spawn_targets(funcs: &[Function]) -> Vec<usize> {
    let mut out: Vec<usize> = funcs
        .iter()
        .flat_map(|f| f.blocks.iter().flat_map(|b| &b.instrs))
        .filter_map(|i| match i {
            Instr::Spawn { func, .. } if func.index() < funcs.len() => Some(func.index()),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether `f` (function index `idx`) recurses into itself on *every* path:
/// no `ret` is reachable from the entry block without first executing a
/// direct recursive call. Such a function can only exhaust the stack.
///
/// Ordinary recursion with a base case has a recursion-free path to some
/// `ret` and is not flagged.
pub fn unbounded_recursion(f: &Function, idx: usize) -> bool {
    let n = f.blocks.len();
    if n == 0 {
        return false;
    }
    let recursive_block = |b: &aprof_vm::ir::BasicBlock| {
        b.instrs.iter().any(|i| matches!(i.callee(), Some((id, _)) if id.index() == idx))
    };
    if !f.blocks.iter().any(recursive_block) {
        return false;
    }
    // Walk the CFG skipping past any block that contains a recursive call:
    // control cannot get beyond that call without recursing.
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        let block = &f.blocks[b];
        if recursive_block(block) {
            continue;
        }
        if matches!(block.term, Terminator::Ret { .. }) {
            return false; // a recursion-free path reaches a ret
        }
        for s in successors(&block.term, n) {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    true
}

/// Predecessor block indices per block (in-range edges only, duplicates
/// collapsed, unreachable predecessors included — filter by
/// [`reachable_blocks`] if needed).
pub fn predecessors(f: &Function) -> Vec<Vec<usize>> {
    let n = f.blocks.len();
    let mut preds = vec![Vec::new(); n];
    for (b, block) in f.blocks.iter().enumerate() {
        for s in successors(&block.term, n) {
            if !preds[s].contains(&b) {
                preds[s].push(b);
            }
        }
    }
    preds
}

/// Immediate dominators per block (Cooper–Harvey–Kennedy), computed over
/// the blocks reachable from block 0. `idom[0] == Some(0)`; unreachable
/// blocks get `None`.
pub fn idoms(f: &Function) -> Vec<Option<usize>> {
    let n = f.blocks.len();
    let mut idom = vec![None; n];
    if n == 0 {
        return idom;
    }
    // Reverse postorder over reachable blocks.
    let mut order = Vec::with_capacity(n); // postorder
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succ = successors(&f.blocks[b].term, n);
        if *i < succ.len() {
            let s = succ[*i];
            *i += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order.reverse(); // now reverse postorder, order[0] == 0
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_index[b] = i;
    }
    let preds = predecessors(f);
    idom[0] = Some(0);
    let intersect = |idom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a].expect("processed");
            }
            while rpo[b] > rpo[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom = None;
            for &p in &preds[b] {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Whether block `a` dominates block `b` under the given idom array.
/// Unreachable blocks dominate nothing and are dominated by nothing.
pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    if idom.get(b).copied().flatten().is_none() || idom.get(a).copied().flatten().is_none() {
        return false;
    }
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        let next = idom[cur].expect("reachable");
        if next == cur {
            return false; // reached the entry without meeting `a`
        }
        cur = next;
    }
}

/// One natural loop: a header, the sources of its back edges (latches), and
/// the set of member blocks (header included). Loops sharing a header are
/// merged into one entry.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of every back edge; dominates all members).
    pub header: usize,
    /// Back-edge sources, ascending.
    pub latches: Vec<usize>,
    /// Membership bitmap over the function's blocks (header included).
    pub body: Vec<bool>,
}

impl NaturalLoop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: usize) -> bool {
        self.body.get(block).copied().unwrap_or(false)
    }

    /// Number of member blocks.
    pub fn len(&self) -> usize {
        self.body.iter().filter(|&&b| b).count()
    }

    /// Whether the loop has no member blocks (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All natural loops of a function plus an irreducibility verdict.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The merged-by-header natural loops, headers ascending.
    pub loops: Vec<NaturalLoop>,
    /// True when a reachable cycle remains after deleting every back edge:
    /// such control flow is not covered by the natural loops and any
    /// trip-count reasoning over them is invalid.
    pub irreducible: bool,
}

/// Detects the natural loops of `f`: a back edge is an edge `u → v` where
/// `v` dominates `u`; the loop of header `v` is `v` plus everything that
/// reaches a latch without passing through `v`. Cycles not induced by back
/// edges (irreducible control flow) set [`LoopForest::irreducible`].
pub fn natural_loops(f: &Function) -> LoopForest {
    let n = f.blocks.len();
    if n == 0 {
        return LoopForest::default();
    }
    let idom = idoms(f);
    let preds = predecessors(f);
    let mut back_edges: Vec<(usize, usize)> = Vec::new(); // (latch, header)
    for (u, block) in f.blocks.iter().enumerate() {
        if idom[u].is_none() {
            continue; // unreachable
        }
        for v in successors(&block.term, n) {
            if dominates(&idom, v, u) {
                back_edges.push((u, v));
            }
        }
    }
    let mut headers: Vec<usize> = back_edges.iter().map(|&(_, h)| h).collect();
    headers.sort_unstable();
    headers.dedup();
    let mut loops = Vec::with_capacity(headers.len());
    for &h in &headers {
        let mut body = vec![false; n];
        body[h] = true;
        let mut stack: Vec<usize> = Vec::new();
        for &(latch, header) in &back_edges {
            if header == h && !body[latch] {
                body[latch] = true;
                stack.push(latch);
            }
        }
        while let Some(b) = stack.pop() {
            for &p in &preds[b] {
                if idom[p].is_some() && !body[p] {
                    body[p] = true;
                    stack.push(p);
                }
            }
        }
        let mut latches: Vec<usize> =
            back_edges.iter().filter(|&&(_, hh)| hh == h).map(|&(l, _)| l).collect();
        latches.sort_unstable();
        latches.dedup();
        loops.push(NaturalLoop { header: h, latches, body });
    }
    // Irreducibility: with all back edges removed, a reachable cycle must
    // not remain (Kahn's algorithm over the reachable subgraph).
    let is_back = |u: usize, v: usize| back_edges.iter().any(|&(a, b)| a == u && b == v);
    let mut indeg = vec![0usize; n];
    let mut reachable = 0usize;
    for u in 0..n {
        if idom[u].is_none() {
            continue;
        }
        reachable += 1;
        for v in successors(&f.blocks[u].term, n) {
            if idom[v].is_some() && !is_back(u, v) {
                indeg[v] += 1;
            }
        }
    }
    let mut queue: Vec<usize> =
        (0..n).filter(|&b| idom[b].is_some() && indeg[b] == 0).collect();
    let mut removed = 0usize;
    while let Some(u) = queue.pop() {
        removed += 1;
        for v in successors(&f.blocks[u].term, n) {
            if idom[v].is_some() && !is_back(u, v) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
    }
    LoopForest { loops, irreducible: removed != reachable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::asm;

    fn func_of(src: &str) -> Vec<Function> {
        asm::parse_module(src).unwrap().functions
    }

    #[test]
    fn unreachable_block_detected() {
        let fs = func_of("func main() {\ne:\n ret\nisland:\n ret\n}");
        let r = reachable_blocks(&fs[0]);
        assert_eq!(r, vec![true, false]);
    }

    #[test]
    fn base_case_recursion_not_flagged() {
        let fs = func_of(
            "func main() {\ne:\n ret\n}\n\
             func f(1) {\ne:\n br r0, rec, base\nrec:\n r1 = call f(r0)\n ret r1\nbase:\n ret r0\n}",
        );
        assert!(!unbounded_recursion(&fs[1], 1));
    }

    #[test]
    fn always_recursing_flagged() {
        let fs = func_of(
            "func main() {\ne:\n ret\n}\nfunc f(1) {\ne:\n r1 = call f(r0)\n ret r1\n}",
        );
        assert!(unbounded_recursion(&fs[1], 1));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let fs = func_of("func main() {\ne:\n r0 = const 1\n ret r0\n}");
        let forest = natural_loops(&fs[0]);
        assert!(forest.loops.is_empty());
        assert!(!forest.irreducible);
    }

    #[test]
    fn counted_loop_detected() {
        // entry -> head; head -> body | exit; body -> head (back edge).
        let fs = func_of(
            "func main(1) regs=4 {\n\
             entry:\n    r1 = const 0\n    jmp head\n\
             head:\n    r2 = clt r1, r0\n    br r2, body, exit\n\
             body:\n    r3 = const 1\n    r1 = add r1, r3\n    jmp head\n\
             exit:\n    ret r1\n}",
        );
        let forest = natural_loops(&fs[0]);
        assert!(!forest.irreducible);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![2]);
        assert!(l.contains(1) && l.contains(2));
        assert!(!l.contains(0) && !l.contains(3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn nested_loops_share_structure() {
        // Two nested counted loops: outer header dominates inner.
        let fs = func_of(
            "func main(1) regs=6 {\n\
             entry:\n    r1 = const 0\n    jmp ohead\n\
             ohead:\n    r2 = clt r1, r0\n    br r2, ibody0, oexit\n\
             ibody0:\n    r3 = const 0\n    jmp ihead\n\
             ihead:\n    r4 = clt r3, r0\n    br r4, ibody, ilatch\n\
             ibody:\n    r5 = const 1\n    r3 = add r3, r5\n    jmp ihead\n\
             ilatch:\n    r5 = const 1\n    r1 = add r1, r5\n    jmp ohead\n\
             oexit:\n    ret r1\n}",
        );
        let forest = natural_loops(&fs[0]);
        assert!(!forest.irreducible);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == 1).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == 3).unwrap();
        for b in [2, 3, 4, 5] {
            assert!(outer.contains(b), "outer must contain {b}");
        }
        assert!(inner.contains(4) && !inner.contains(2) && !inner.contains(5));
    }

    #[test]
    fn dominators_of_diamond() {
        let fs = func_of(
            "func main(1) regs=4 {\n\
             entry:\n    br r0, a, b\n\
             a:\n    jmp join\n\
             b:\n    jmp join\n\
             join:\n    ret\n}",
        );
        let idom = idoms(&fs[0]);
        assert_eq!(idom[0], Some(0));
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(0));
        assert_eq!(idom[3], Some(0), "join's idom is the branch, not a/b");
        assert!(dominates(&idom, 0, 3));
        assert!(!dominates(&idom, 1, 3));
    }
}
