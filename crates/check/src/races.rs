//! Static race candidates: guest memory locations that may be written
//! concurrently under inconsistent locksets.
//!
//! The dataflow pass hands every reachable memory access here, abstracted
//! to a [`Loc`] plus the must-lockset held at the access. Two accesses are
//! a candidate pair when they may alias, at least one writes, their
//! must-locksets share no lock, and at least one of them can execute on a
//! spawned thread. This deliberately over-approximates the dynamic
//! [`HelgrindTool`] verdict: must-locksets under-approximate the locks
//! actually held, so a common dynamic lock is never invented statically,
//! and every happens-before race the dynamic pass can observe sits on a
//! pair this pass also flags. The cross-check test in
//! `tests/race_crosscheck.rs` enforces exactly that containment.
//!
//! [`HelgrindTool`]: ../../aprof_tools/struct.HelgrindTool.html

use crate::diag::{Diagnostic, Severity};
use std::collections::BTreeSet;

/// Abstract memory location of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// A statically known cell address.
    Cell(i64),
    /// Somewhere inside the allocation made at the given site.
    Region(u32),
    /// Statically unknown — aliases everything.
    Any,
}

impl Loc {
    fn aliases(self, other: Loc) -> bool {
        match (self, other) {
            (Loc::Any, _) | (_, Loc::Any) => true,
            (Loc::Cell(a), Loc::Cell(b)) => a == b,
            (Loc::Region(a), Loc::Region(b)) => a == b,
            // A constant cell address and a dynamic allocation are assumed
            // disjoint: the guest cannot name an allocation's address as a
            // literal without having obtained it from `alloc`.
            _ => false,
        }
    }
}

/// One reachable memory access, as abstracted by the dataflow pass.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Function index of the access.
    pub func: usize,
    /// Block index of the access.
    pub block: usize,
    /// Instruction index of the access.
    pub instr: usize,
    /// Whether the access writes (stores and `sys_read` buffer fills).
    pub write: bool,
    /// The abstract location accessed.
    pub loc: Loc,
    /// Locks definitely held at the access (must-lockset).
    pub locks: BTreeSet<i64>,
    /// Whether the enclosing function can run on a spawned thread.
    pub thread_side: bool,
}

/// The verifier's race-candidate summary, kept separate from the
/// diagnostics so tests can compare it against dynamic findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceCandidates {
    /// Statically known cell addresses with candidate races.
    pub cells: BTreeSet<i64>,
    /// Whether any candidate involves a dynamic allocation or an unknown
    /// address (whose concrete addresses are unknowable statically).
    pub dynamic_regions: bool,
    /// Number of distinct candidate locations.
    pub groups: usize,
}

impl RaceCandidates {
    /// No candidates at all.
    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }

    /// Whether a dynamic racy address is covered by the candidate set:
    /// either its exact cell is a candidate, or some candidate lives in a
    /// dynamic region (whose addresses cannot be enumerated statically).
    pub fn covers_addr(&self, addr: u64) -> bool {
        self.dynamic_regions || self.cells.contains(&(addr as i64))
    }
}

/// Pairs up the access sites and reports one `N201` note per candidate
/// location. `has_spawn` gates the whole pass: a program that never
/// spawns has exactly one thread and cannot race.
pub fn find_candidates(
    sites: &[AccessSite],
    has_spawn: bool,
) -> (Vec<Diagnostic>, RaceCandidates) {
    if !has_spawn {
        return (Vec::new(), RaceCandidates::default());
    }
    let mut racy = vec![false; sites.len()];
    for i in 0..sites.len() {
        for j in i + 1..sites.len() {
            let (a, b) = (&sites[i], &sites[j]);
            if !(a.write || b.write) || !(a.thread_side || b.thread_side) {
                continue;
            }
            if !a.loc.aliases(b.loc) {
                continue;
            }
            if a.locks.intersection(&b.locks).next().is_some() {
                continue; // a common lock orders the pair
            }
            racy[i] = true;
            racy[j] = true;
        }
    }
    let mut candidates = RaceCandidates::default();
    let mut locs: Vec<Loc> = Vec::new();
    for (site, flagged) in sites.iter().zip(&racy) {
        if !flagged {
            continue;
        }
        match site.loc {
            Loc::Cell(c) => {
                candidates.cells.insert(c);
            }
            Loc::Region(_) | Loc::Any => candidates.dynamic_regions = true,
        }
        if !locs.contains(&site.loc) {
            locs.push(site.loc);
        }
    }
    locs.sort_unstable();
    candidates.groups = locs.len();
    let mut diags = Vec::new();
    for loc in locs {
        // Anchor the note at the first flagged write of the location (or
        // the first flagged access if all flagged accesses are reads).
        let anchor = sites
            .iter()
            .zip(&racy)
            .filter(|(s, &r)| r && s.loc == loc)
            .map(|(s, _)| s)
            .max_by_key(|s| s.write)
            .expect("location came from a flagged site");
        let what = match loc {
            Loc::Cell(c) => format!("cell {c}"),
            Loc::Region(s) => format!("allocation #{s}"),
            Loc::Any => "a statically unknown address".to_owned(),
        };
        diags.push(Diagnostic {
            severity: Severity::Note,
            code: "N201",
            func: anchor.func,
            block: Some(anchor.block),
            instr: Some(anchor.instr),
            message: format!(
                "{what} may be accessed concurrently under inconsistent locksets \
                 (static race candidate)"
            ),
        });
    }
    (diags, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(loc: Loc, write: bool, locks: &[i64], thread_side: bool) -> AccessSite {
        AccessSite {
            func: 0,
            block: 0,
            instr: 0,
            write,
            loc,
            locks: locks.iter().copied().collect(),
            thread_side,
        }
    }

    #[test]
    fn common_lock_suppresses_candidate() {
        let sites = [
            site(Loc::Cell(8), true, &[1], true),
            site(Loc::Cell(8), true, &[1, 2], false),
        ];
        let (diags, c) = find_candidates(&sites, true);
        assert!(diags.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn disjoint_locksets_flag_cell() {
        let sites =
            [site(Loc::Cell(8), true, &[1], true), site(Loc::Cell(8), true, &[2], false)];
        let (diags, c) = find_candidates(&sites, true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "N201");
        assert!(c.cells.contains(&8));
        assert!(c.covers_addr(8));
        assert!(!c.covers_addr(9));
    }

    #[test]
    fn no_spawn_means_no_candidates() {
        let sites =
            [site(Loc::Cell(8), true, &[], true), site(Loc::Cell(8), true, &[], true)];
        let (diags, c) = find_candidates(&sites, false);
        assert!(diags.is_empty() && c.is_empty());
    }

    #[test]
    fn reads_only_do_not_race() {
        let sites =
            [site(Loc::Cell(8), false, &[], true), site(Loc::Cell(8), false, &[], true)];
        let (_, c) = find_candidates(&sites, true);
        assert!(c.is_empty());
    }

    #[test]
    fn region_candidate_covers_all_addresses() {
        let sites =
            [site(Loc::Region(3), true, &[], true), site(Loc::Region(3), false, &[], false)];
        let (_, c) = find_candidates(&sites, true);
        assert!(c.dynamic_regions && c.covers_addr(0xdead));
    }
}
