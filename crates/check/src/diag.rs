//! Structured diagnostics and their rendering.
//!
//! Every finding of the verifier is a [`Diagnostic`]: a severity, a stable
//! code (`E0xx` hard errors, `W1xx` lints, `N2xx` notes), the IR coordinate
//! it is anchored to, and a message. Two renderings exist: a plain one
//! addressed by IR coordinates (for programs built in memory), and a
//! rustc-style one with source excerpt and carets when the program came
//! from an assembly listing with a [`SourceMap`].
//!
//! [`SourceMap`]: aprof_vm::asm::SourceMap

use aprof_vm::asm::SourceMap;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (`N2xx`): surfaced only on request, never affects the
    /// verdict.
    Note,
    /// A lint (`W1xx`): the program runs, but something looks wrong.
    /// Escalated to rejection under `--deny-lints`.
    Warning,
    /// A hard error (`E0xx`): the program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the verifier, anchored to an IR coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable code (`"E002"`, `"W104"`, ...); see the code table in
    /// DESIGN.md §7.
    pub code: &'static str,
    /// Index of the offending function.
    pub func: usize,
    /// Index of the offending block within the function; `None` for
    /// function-level findings (e.g. an unreachable function).
    pub block: Option<usize>,
    /// Index of the offending instruction within the block; `None` for
    /// block-level findings or findings on the terminator.
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Renders without source text: `severity[code]: message` plus an IR
    /// coordinate line. `names` are the function names, indexed by
    /// function.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        let func = names.get(self.func).map(String::as_str).unwrap_or("?");
        match (self.block, self.instr) {
            (Some(b), Some(i)) => out.push_str(&format!("  --> {func}, bb{b}, instr {i}\n")),
            (Some(b), None) => out.push_str(&format!("  --> {func}, bb{b}\n")),
            _ => out.push_str(&format!("  --> {func}\n")),
        }
        out
    }

    /// Renders rustc-style against the original listing: the `file:line`
    /// location, the offending source line, and a caret underline.
    ///
    /// Falls back to [`render`](Diagnostic::render) when the coordinate has
    /// no source line (e.g. an implicit terminator).
    pub fn render_source(
        &self,
        names: &[String],
        map: &SourceMap,
        source: &str,
        file: &str,
    ) -> String {
        let line_no = match self.block {
            Some(b) => map.line_of(self.func, b, self.instr),
            None => map.functions.get(self.func).map(|f| f.header_line),
        };
        let Some(line_no) = line_no.filter(|&l| l > 0) else {
            return self.render(names);
        };
        let Some(text) = source.lines().nth(line_no - 1) else {
            return self.render(names);
        };
        let trimmed = text.trim_end();
        let indent = trimmed.len() - trimmed.trim_start().len();
        let width = trimmed.trim_start().len().max(1);
        let gutter = line_no.to_string().len();
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        out.push_str(&format!("{:gutter$}--> {file}:{line_no}:{}\n", "", indent + 1));
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!("{line_no} | {trimmed}\n"));
        out.push_str(&format!(
            "{:gutter$} | {:indent$}{}\n",
            "",
            "",
            "^".repeat(width),
        ));
        out
    }
}

/// Renders a rustc-style located parse error (`E001`) for a listing that
/// did not survive [`aprof_vm::asm::parse_module`].
pub fn render_parse_error(err: &aprof_vm::asm::AsmError, source: &str, file: &str) -> String {
    let mut out = format!("error[E001]: {}\n", err.message);
    if err.line == 0 {
        out.push_str(&format!("  --> {file}\n"));
        return out;
    }
    let Some(text) = source.lines().nth(err.line - 1) else {
        out.push_str(&format!("  --> {file}:{}\n", err.line));
        return out;
    };
    let trimmed = text.trim_end();
    let indent = trimmed.len() - trimmed.trim_start().len();
    let (caret_at, width) = if err.col > 0 {
        // Underline from the reported column to the end of the token-ish
        // run (until whitespace), or at least one column.
        let from = err.col - 1;
        let width = trimmed[from.min(trimmed.len())..]
            .chars()
            .take_while(|c| !c.is_whitespace())
            .count()
            .max(1);
        (from, width)
    } else {
        (indent, trimmed.trim_start().len().max(1))
    };
    let gutter = err.line.to_string().len();
    out.push_str(&format!("{:gutter$}--> {file}:{}:{}\n", "", err.line, caret_at + 1));
    out.push_str(&format!("{:gutter$} |\n", ""));
    out.push_str(&format!("{} | {trimmed}\n", err.line));
    out.push_str(&format!("{:gutter$} | {:caret_at$}{}\n", "", "", "^".repeat(width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn plain_render_mentions_code_and_coordinate() {
        let d = Diagnostic {
            severity: Severity::Warning,
            code: "W104",
            func: 0,
            block: Some(2),
            instr: Some(1),
            message: "r3 may be read before initialization".into(),
        };
        let r = d.render(&["main".into()]);
        assert!(r.contains("warning[W104]"), "{r}");
        assert!(r.contains("main, bb2, instr 1"), "{r}");
    }

    #[test]
    fn parse_error_renders_caret_at_column() {
        let src = "func main() {\nentry:\n    r0 = bogus 1\n}";
        let err = aprof_vm::asm::parse(src).unwrap_err();
        let r = render_parse_error(&err, src, "t.asm");
        assert!(r.contains("t.asm:3:10"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
    }
}
