//! The diagnostic code registry: one table for every `E`/`W`/`N`/`B` code
//! the workspace can emit, with the extended help shown by
//! `aprof-cli check --explain <CODE>`.
//!
//! This table is the *single source of truth*: DESIGN.md §7 (verifier
//! codes) and §13 (bound-analysis codes) must list exactly these codes —
//! a unit test here parses DESIGN.md and fails on any drift in either
//! direction, so the CLI help and the documentation cannot disagree.

use crate::diag::Severity;

/// One documented diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CodeDoc {
    /// The stable code, e.g. `"E002"`.
    pub code: &'static str,
    /// Severity the code is emitted at.
    pub severity: Severity,
    /// One-line title (also the DESIGN.md table entry).
    pub title: &'static str,
    /// Extended help: what the diagnostic means, why it matters, and what
    /// to do about it. Rendered by `check --explain`.
    pub explain: &'static str,
}

/// Every diagnostic code the workspace can emit, ascending.
pub const CODES: &[CodeDoc] = &[
    CodeDoc {
        code: "E001",
        severity: Severity::Error,
        title: "parse error (asm front end)",
        explain: "The assembly source could not be parsed into guest IR. The message \
                  carries the offending line and column; nothing downstream of the \
                  parser ran. Fix the syntax and re-run.",
    },
    CodeDoc {
        code: "E002",
        severity: Severity::Error,
        title: "definite use of an uninitialized register",
        explain: "On every path reaching this instruction, the register is read before \
                  any write. Under the VM's strict mode this faults with UseBeforeDef; \
                  in permissive mode it silently reads zero. Initialize the register \
                  (e.g. `r1 = const 0`) on all paths before the use.",
    },
    CodeDoc {
        code: "E003",
        severity: Severity::Error,
        title: "bad terminator target / empty function",
        explain: "A jump or branch names a block index outside the function, or the \
                  function has no blocks at all. `Program::new` rejects the same \
                  shapes; the verifier reports them as located diagnostics instead of \
                  a fail-fast construction error.",
    },
    CodeDoc {
        code: "E004",
        severity: Severity::Error,
        title: "register out of range",
        explain: "An instruction names a register at or beyond the function's declared \
                  register count (this includes declaring more params than regs). \
                  Raise `regs=` on the function header or renumber the registers.",
    },
    CodeDoc {
        code: "E005",
        severity: Severity::Error,
        title: "unknown callee / arity mismatch",
        explain: "A call or spawn targets a function id that does not exist, or passes \
                  a number of arguments different from the callee's declared parameter \
                  count. Arguments map positionally onto the callee's r0..rN.",
    },
    CodeDoc {
        code: "E006",
        severity: Severity::Error,
        title: "entry takes params / does not exist",
        explain: "The program's entry function must exist and take no parameters — \
                  there is no caller to supply them. Point the entry at a 0-ary \
                  function (by convention `main`).",
    },
    CodeDoc {
        code: "E007",
        severity: Severity::Error,
        title: "release of a definitely-unheld lock",
        explain: "On every path, the released lock id is not held at this point (the \
                  may-held lockset, including locks flowed in from every call site, \
                  excludes it). The VM faults with LockNotHeld here. Acquire the lock \
                  first, or remove the release.",
    },
    CodeDoc {
        code: "W101",
        severity: Severity::Warning,
        title: "unreachable block",
        explain: "No path from the function's entry block reaches this block; it is \
                  dead code. The block is ignored by execution, dataflow and the \
                  bound analysis alike.",
    },
    CodeDoc {
        code: "W102",
        severity: Severity::Warning,
        title: "unreachable function",
        explain: "The function is neither the entry nor transitively called or spawned \
                  from it. It still gets verified, but it can never execute.",
    },
    CodeDoc {
        code: "W103",
        severity: Severity::Warning,
        title: "unbounded recursion",
        explain: "Every path through the function executes a recursive call before any \
                  `ret` — a call-graph cycle with no conditional exit. Such a function \
                  can only exhaust the stack. Add a base case that returns without \
                  recursing.",
    },
    CodeDoc {
        code: "W104",
        severity: Severity::Warning,
        title: "maybe-uninitialized use",
        explain: "Some path reaches this read without a prior write to the register \
                  while another path initializes it. The VM's strict mode faults only \
                  if the uninitialized path actually executes; make the \
                  initialization unconditional to silence the lint.",
    },
    CodeDoc {
        code: "W105",
        severity: Severity::Warning,
        title: "maybe-unheld release",
        explain: "The released lock is held on some paths but not all (the must-held \
                  lockset, intersected over call sites, excludes it while the \
                  may-held set contains it). Balance acquire/release on every path.",
    },
    CodeDoc {
        code: "W106",
        severity: Severity::Warning,
        title: "thread entry returns holding a lock",
        explain: "A spawned function can exit while still holding a mutex, which no \
                  other thread can then release. Release everything the thread \
                  acquired before it returns.",
    },
    CodeDoc {
        code: "W107",
        severity: Severity::Warning,
        title: "spawn handle never joined",
        explain: "The handle returned by `spawn` is never passed to `join` on any \
                  path. The program may exit while the thread still runs, and its \
                  effects race with program shutdown.",
    },
    CodeDoc {
        code: "W108",
        severity: Severity::Warning,
        title: "join on a pointer value",
        explain: "The value joined is an allocation address, not a spawn handle. \
                  `join` on a non-handle is a dynamic no-op at best and a hang at \
                  worst; join the register that received the spawn result.",
    },
    CodeDoc {
        code: "W110",
        severity: Severity::Warning,
        title: "implicit `ret` inserted by the assembler",
        explain: "An assembly block fell off the end without a written terminator, so \
                  the parser supplied a bare `ret`. Write the terminator explicitly — \
                  implicit returns are usually a missing `jmp`.",
    },
    CodeDoc {
        code: "N201",
        severity: Severity::Note,
        title: "static race candidate",
        explain: "Two threads may access this address with no common lock in their \
                  must-held locksets, at least one access a write. This is an \
                  over-approximation of what the dynamic HelgrindTool can observe \
                  (static candidates ⊇ dynamic races); notes never reject a program \
                  and are hidden unless `--races` is passed.",
    },
    CodeDoc {
        code: "B301",
        severity: Severity::Note,
        title: "inferred static cost bound",
        explain: "The bound analysis inferred this symbolic cost bound for the routine \
                  on the lattice Const ⊑ Log ⊑ Linear ⊑ Linearithmic ⊑ Poly(k) ⊑ \
                  Exponential ⊑ Unknown. The bound composes loop trip classes \
                  through loop nests and callee summaries bottom-up over the call \
                  graph; it is an upper bound on how the routine's cost grows with \
                  its input, not an exact complexity.",
    },
    CodeDoc {
        code: "B302",
        severity: Severity::Warning,
        title: "loop trip count not statically bounded",
        explain: "No exit of this natural loop tests a recognized induction variable \
                  (affine counter vs a loop-invariant bound, or a halving/doubling \
                  update), or the controlling update is non-affine, or the control \
                  flow is irreducible. The loop contributes the top element Unknown \
                  to every enclosing bound — sound, but maximally imprecise.",
    },
    CodeDoc {
        code: "B303",
        severity: Severity::Warning,
        title: "recursion without a recognized size decrease",
        explain: "The routine sits in a call-graph cycle, but no size-change argument \
                  was found: no argument of the recursive call is a constant \
                  decrement or a constant division of a parameter. The recursion \
                  depth cannot be bounded, so the routine's bound is Unknown.",
    },
    CodeDoc {
        code: "B304",
        severity: Severity::Warning,
        title: "exponential bound (branching recursion)",
        explain: "The routine makes two or more recursive calls per invocation (or \
                  recurses inside a loop) while decreasing its argument by a \
                  constant, so the call tree branches: the inferred bound is \
                  Exponential. If the intent was divide-and-conquer, divide the \
                  argument instead of decrementing it.",
    },
    CodeDoc {
        code: "B305",
        severity: Severity::Error,
        title: "unsound static bound (dynamic fit grew faster)",
        explain: "The static-vs-dynamic differential observed a fitted growth model \
                  strictly above the routine's static bound. Since the static bound \
                  claims to over-approximate every execution, this is a bug in the \
                  bound analysis (or a mis-fitted profile) and is treated as a hard \
                  failure wherever the differential runs (corpus oracle, CLI).",
    },
    CodeDoc {
        code: "B306",
        severity: Severity::Note,
        title: "imprecise static bound (strictly above the dynamic fit)",
        explain: "The static bound is sound but strictly above the dynamically fitted \
                  growth model — e.g. Unknown against a measured O(n). This is the \
                  differential's precision metric, not a failure: data-dependent \
                  loops and coarse recursion rules lose precision by design.",
    },
];

/// Looks a code up (case-insensitive).
pub fn lookup(code: &str) -> Option<&'static CodeDoc> {
    CODES.iter().find(|c| c.code.eq_ignore_ascii_case(code))
}

/// Renders the rustc-style extended help for one code.
pub fn explain(code: &str) -> Option<String> {
    let doc = lookup(code)?;
    let sev = match doc.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    };
    let mut out = format!("{}: {} ({})\n\n", doc.code, doc.title, sev);
    // Re-flow the explanation to ~76 columns.
    let mut col = 0usize;
    for word in doc.explain.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 76 {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out.push('\n');
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_sorted_and_unique() {
        // Families in severity-block order (errors, lints, notes, bound
        // analysis), numerically ascending within each family.
        let rank = |code: &'static str| {
            let fam = ["E", "W", "N", "B"]
                .iter()
                .position(|p| code.starts_with(p))
                .unwrap_or_else(|| panic!("unexpected code family: {code}"));
            (fam, code)
        };
        for w in CODES.windows(2) {
            assert!(rank(w[0].code) < rank(w[1].code), "{} !< {}", w[0].code, w[1].code);
        }
    }

    #[test]
    fn lookup_and_explain() {
        assert_eq!(lookup("e002").unwrap().code, "E002");
        assert!(lookup("E999").is_none());
        let text = explain("B305").unwrap();
        assert!(text.starts_with("B305:"));
        assert!(text.contains("differential"));
        assert!(text.lines().all(|l| l.len() <= 78), "over-wide line:\n{text}");
    }

    #[test]
    fn severity_prefix_matches_code_letter() {
        for c in CODES {
            let want = match c.code.as_bytes()[0] {
                b'E' => Severity::Error,
                b'W' => Severity::Warning,
                b'N' => Severity::Note,
                // B codes span severities: B305 is the differential's hard
                // failure, B302/B303/B304 are lints, B301/B306 are notes.
                b'B' => c.severity,
                other => panic!("unexpected code letter {}", other as char),
            };
            assert_eq!(c.severity, want, "{}", c.code);
        }
    }

    /// DESIGN.md and this table must agree exactly: every code documented
    /// here appears in DESIGN.md (§7 for E/W/N, §13 for B), and every code
    /// token mentioned anywhere in DESIGN.md exists in this table.
    #[test]
    fn design_md_code_tables_do_not_drift() {
        let design = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../DESIGN.md"
        ))
        .expect("DESIGN.md readable from crates/check");
        for c in CODES {
            assert!(
                design.contains(c.code),
                "DESIGN.md does not mention {} ({})",
                c.code,
                c.title
            );
        }
        // Scan DESIGN.md for code-shaped tokens and demand each is ours.
        let known: Vec<&str> = CODES.iter().map(|c| c.code).collect();
        let bytes = design.as_bytes();
        for i in 0..bytes.len().saturating_sub(3) {
            let c = bytes[i];
            if !matches!(c, b'E' | b'W' | b'N' | b'B') {
                continue;
            }
            if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'/') {
                continue; // mid-word (e.g. "W1xx" handled below, "N2xx")
            }
            let tok = &design[i..i + 4];
            if tok[1..].bytes().all(|b| b.is_ascii_digit()) {
                // Allow wildcard families like E0xx/W1xx/N2xx/B3xx.
                if i + 4 < bytes.len() && bytes[i + 4].is_ascii_digit() {
                    continue; // longer number, not a code
                }
                assert!(
                    known.contains(&tok),
                    "DESIGN.md mentions unknown diagnostic code {tok}"
                );
            }
        }
    }
}
