//! Structural well-formedness: the hard-error classes that mirror (and
//! extend) [`Program::new`] validation, emitted as located diagnostics
//! instead of a single fail-fast error.
//!
//! The guarantee the differential tests lean on: this pass reports **no
//! errors** if and only if `Program::new` accepts the function list. The
//! dataflow passes only run on structurally clean programs, so they can
//! index blocks/registers/functions without bounds anxiety.
//!
//! [`Program::new`]: aprof_vm::ir::Program::new

use crate::diag::{Diagnostic, Severity};
use aprof_vm::ir::{FuncId, Function, Instr, Reg, Terminator};

fn error(
    code: &'static str,
    func: usize,
    block: Option<usize>,
    instr: Option<usize>,
    message: String,
) -> Diagnostic {
    Diagnostic { severity: Severity::Error, code, func, block, instr, message }
}

/// Checks one call/spawn site against the callee table.
fn check_callee(
    funcs: &[Function],
    func: FuncId,
    args: &[Reg],
    spawn: bool,
) -> Option<String> {
    let what = if spawn { "spawn of" } else { "call to" };
    match funcs.get(func.index()) {
        None => Some(format!("{what} unknown function {func:?}")),
        Some(callee) if callee.params as usize != args.len() => Some(format!(
            "{what} `{}` with {} args, expected {}",
            callee.name,
            args.len(),
            callee.params
        )),
        _ => None,
    }
}

/// Runs the structural pass over an unvalidated function list.
///
/// Error classes: `E003` (bad terminator target / empty function), `E004`
/// (register out of range), `E005` (unknown callee or arity mismatch),
/// `E006` (entry-function errors).
pub fn check(funcs: &[Function], entry: FuncId) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match funcs.get(entry.index()) {
        None => out.push(error(
            "E006",
            entry.index(),
            None,
            None,
            format!("entry function {entry:?} does not exist"),
        )),
        Some(f) if f.params != 0 => out.push(error(
            "E006",
            entry.index(),
            None,
            None,
            format!("entry function `{}` must take no parameters", f.name),
        )),
        _ => {}
    }
    let mut uses: Vec<Reg> = Vec::new();
    for (fi, f) in funcs.iter().enumerate() {
        if f.params > f.regs {
            out.push(error(
                "E004",
                fi,
                None,
                None,
                format!("`{}` declares {} params but only {} regs", f.name, f.params, f.regs),
            ));
        }
        if f.blocks.is_empty() {
            out.push(error("E003", fi, None, None, format!("`{}` has no basic blocks", f.name)));
            continue;
        }
        let reg_ok = |r: Reg| r.0 < f.regs;
        let block_ok = |b: aprof_vm::ir::BlockId| b.index() < f.blocks.len();
        for (bi, block) in f.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                uses.clear();
                instr.uses_into(&mut uses);
                uses.extend(instr.def());
                if let Some(&bad) = uses.iter().find(|r| !reg_ok(**r)) {
                    out.push(error(
                        "E004",
                        fi,
                        Some(bi),
                        Some(ii),
                        format!("register r{} out of range (`{}` has {} regs)", bad.0, f.name, f.regs),
                    ));
                }
                if let Some((callee, args)) = instr.callee() {
                    let spawn = matches!(instr, Instr::Spawn { .. });
                    if let Some(msg) = check_callee(funcs, callee, args, spawn) {
                        out.push(error("E005", fi, Some(bi), Some(ii), msg));
                    }
                }
            }
            match &block.term {
                Terminator::Jmp(b) => {
                    if !block_ok(*b) {
                        out.push(error(
                            "E003",
                            fi,
                            Some(bi),
                            None,
                            format!("jump to unknown block {b}"),
                        ));
                    }
                }
                Terminator::Br { cond, then_to, else_to } => {
                    if !reg_ok(*cond) {
                        out.push(error(
                            "E004",
                            fi,
                            Some(bi),
                            None,
                            format!("branch condition r{} out of range", cond.0),
                        ));
                    }
                    for b in [then_to, else_to] {
                        if !block_ok(*b) {
                            out.push(error(
                                "E003",
                                fi,
                                Some(bi),
                                None,
                                format!("branch to unknown block {b}"),
                            ));
                        }
                    }
                }
                Terminator::Ret { value: Some(r) } => {
                    if !reg_ok(*r) {
                        out.push(error(
                            "E004",
                            fi,
                            Some(bi),
                            None,
                            format!("return register r{} out of range", r.0),
                        ));
                    }
                }
                Terminator::Ret { value: None } => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::ir::{BasicBlock, BlockId, Program};

    fn ret() -> Terminator {
        Terminator::Ret { value: None }
    }

    #[test]
    fn clean_function_matches_program_new() {
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock { instrs: vec![], term: ret() }],
        };
        assert!(check(std::slice::from_ref(&f), FuncId(0)).is_empty());
        assert!(Program::new(vec![f], FuncId(0)).is_ok());
    }

    #[test]
    fn bad_jump_is_e003_and_rejected_by_program_new() {
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock { instrs: vec![], term: Terminator::Jmp(BlockId(7)) }],
        };
        let diags = check(std::slice::from_ref(&f), FuncId(0));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E003");
        assert!(Program::new(vec![f], FuncId(0)).is_err());
    }

    #[test]
    fn out_of_range_register_is_e004() {
        let f = Function {
            name: "main".into(),
            params: 0,
            regs: 1,
            blocks: vec![BasicBlock {
                instrs: vec![Instr::Const { dst: Reg(9), value: 1 }],
                term: ret(),
            }],
        };
        let diags = check(std::slice::from_ref(&f), FuncId(0));
        assert_eq!(diags[0].code, "E004");
        assert_eq!((diags[0].block, diags[0].instr), (Some(0), Some(0)));
    }
}
