//! The acceptance sweep: no bundled workload's measured growth may
//! outgrow its static bound.
//!
//! Every workload in the registry (the OMP2012/PARSEC/MySQL analogs, the
//! service-shaped guests kvstore/docpipe/webserv, the micro-examples and
//! the planted exponential) is profiled for real at several sizes; each
//! routine's worst-case cost-vs-rms points are then held against the
//! bound inferred statically from that build's IR. An `Unsound` verdict
//! anywhere fails the suite — the static bound claims to over-approximate
//! every execution, so a faster-growing fit is a bug in `aprof-bound`.

use aprof_bound::{compare, infer_program, BoundVsFit};
use aprof_core::TrmsProfiler;
use aprof_workloads::{all, WorkloadParams};

#[test]
fn no_workload_profile_outgrows_its_static_bound() {
    let mut compared = 0usize;
    for wl in all() {
        for size in [24u64, 48] {
            let params = WorkloadParams { size, threads: 2, seed: 11 };
            let mut machine = wl.build(&params);
            let program = machine.program();
            let names = program.routines().clone();
            let report = infer_program(program);
            // Function index → routine name, for blaming failures.
            let n_funcs = program.functions().len();

            let mut profiler = TrmsProfiler::new();
            machine
                .run_with(&mut profiler)
                .unwrap_or_else(|e| panic!("workload {} failed to run: {e}", wl.name));
            let profile = profiler.into_report(&names);

            // Worst-case cost per observed rms class, per routine. The
            // profile indexes routines by the same ids the VM assigns to
            // functions, so names line up one-to-one.
            let mut points: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_funcs];
            for routine in &profile.routines {
                let Some(rb) = report.bounds.iter().find(|b| b.name == routine.name) else {
                    continue;
                };
                for (rms, stats) in routine.rms_curve() {
                    points[rb.func].push((rms as f64, stats.max as f64));
                }
            }

            for c in compare(&report, &points) {
                compared += 1;
                assert_ne!(
                    c.verdict,
                    BoundVsFit::Unsound,
                    "{} (size {size}): routine {} measured {:?} above its \
                     static bound {}",
                    wl.name,
                    c.name,
                    c.fit.map(|f| f.model),
                    c.bound.notation(),
                );
            }
        }
    }
    // The sweep must actually have exercised the differential.
    assert!(compared > 100, "only {compared} routine comparisons ran");
}
