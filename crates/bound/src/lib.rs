//! `aprof-bound` — static symbolic cost-bound inference over guest IR.
//!
//! An abstract-interpretation pass that assigns every routine a bound on
//! the lattice
//!
//! ```text
//! Const ⊑ Log ⊑ Linear ⊑ Linearithmic ⊑ Poly(k) ⊑ Exponential ⊑ Unknown
//! ```
//!
//! by classifying natural-loop trip counts (induction-variable detection
//! against constant and input-derived limits), analyzing recursion over
//! call-graph SCCs with size-change arguments (decrement ⇒ linear depth,
//! halving ⇒ logarithmic depth, branching self-calls ⇒ exponential), and
//! composing callee summaries bottom-up through loop nests.
//!
//! The companion [`differential`] module compares the inferred bound to
//! the growth model `aprof-analysis` fits to a routine's measured
//! `(rms, cost)` profile, classifying each routine `consistent`,
//! `imprecise` (bound sound but loose), or `unsound` (the execution
//! outgrew the bound — a hard failure surfaced as B305). The corpus
//! fuzzer runs this differential as its fifth oracle.
//!
//! ```
//! use aprof_bound::{infer_functions, Bound};
//! let module = aprof_vm::asm::parse_module(
//!     "func main() regs=4 {\n\
//!      entry:\n    r0 = const 0\n    r1 = const 10\n    jmp head\n\
//!      head:\n    r2 = clt r0, r1\n    br r2, body, exit\n\
//!      body:\n    r3 = const 1\n    r0 = add r0, r3\n    jmp head\n\
//!      exit:\n    ret r0\n}",
//! )
//! .unwrap();
//! let report = infer_functions(&module.functions);
//! assert_eq!(report.bounds[0].bound, Bound::Const);
//! ```

#![forbid(unsafe_code)]

pub mod differential;
pub mod infer;
pub mod lattice;

pub use differential::{
    classify, compare, model_bound, strong_evidence, BoundVsFit, RoutineComparison,
};
pub use infer::{infer_functions, infer_program, BoundReport, BoundStats, RoutineBound};
pub use lattice::{Bound, MAX_POLY_DEGREE};
