//! The static-vs-dynamic differential: compare the inferred symbolic bound
//! of a routine against the growth model fitted to its measured
//! `(rms, cost)` profile.
//!
//! Three outcomes per routine:
//!
//! * [`BoundVsFit::Consistent`] — the static bound dominates (or equals)
//!   the fitted growth, or the profile carries too little evidence to
//!   distinguish models.
//! * [`BoundVsFit::Imprecise`] — the static bound sits *strictly above*
//!   the fitted growth on strong evidence: sound but loose.
//! * [`BoundVsFit::Unsound`] — the fitted growth sits strictly above the
//!   static bound on strong evidence: the analysis claimed a bound the
//!   execution exceeded. This is a hard failure (B305) — either the
//!   inference or the profiler is wrong.
//!
//! Evidence gating matters: on a handful of points a least-squares fit
//! happily labels constant-cost routines "linear" (any finite profile is
//! consistent with O(1)). A mismatch only escalates past `Consistent` when
//! the profile spans enough distinct input sizes with enough cost growth
//! and a tight fit — the thresholds below, documented in DESIGN.md §13.

use aprof_analysis::{fit_verdict, FitResult, FitVerdict, GrowthModel};

use crate::infer::BoundReport;
use crate::lattice::Bound;

/// Minimum profile points before a fit can contradict a static bound.
pub const MIN_POINTS: usize = 5;
/// Minimum ratio between largest and smallest observed rms.
pub const MIN_RMS_SPAN: f64 = 4.0;
/// Minimum ratio between largest and smallest observed cost.
pub const MIN_COST_GROWTH: f64 = 8.0;
/// Minimum fit quality (R²) before a fit can contradict a static bound.
pub const MIN_R2: f64 = 0.9;

/// The verdict of comparing one routine's static bound to its fitted
/// dynamic growth model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVsFit {
    /// Static bound ⊒ fitted growth (or evidence too weak to judge).
    Consistent,
    /// Static bound strictly above the fitted growth on strong evidence.
    Imprecise,
    /// Fitted growth strictly above the static bound on strong evidence.
    Unsound,
}

impl BoundVsFit {
    /// Short stable label, used in reports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            BoundVsFit::Consistent => "consistent",
            BoundVsFit::Imprecise => "imprecise",
            BoundVsFit::Unsound => "unsound",
        }
    }
}

/// The lattice element a fitted growth model corresponds to.
pub fn model_bound(model: GrowthModel) -> Bound {
    match model {
        GrowthModel::Constant => Bound::Const,
        GrowthModel::Logarithmic => Bound::Log,
        GrowthModel::Linear => Bound::Linear,
        GrowthModel::Linearithmic => Bound::Linearithmic,
        GrowthModel::Quadratic => Bound::poly(2),
        GrowthModel::Cubic => Bound::poly(3),
        GrowthModel::Exponential => Bound::Exponential,
    }
}

/// One routine's differential outcome.
#[derive(Debug, Clone)]
pub struct RoutineComparison {
    /// Routine / function index.
    pub func: usize,
    /// Routine name.
    pub name: String,
    /// The static bound.
    pub bound: Bound,
    /// The fitted model, when the profile supported a fit.
    pub fit: Option<FitResult>,
    /// Number of `(rms, cost)` points behind the fit.
    pub points: usize,
    /// The verdict.
    pub verdict: BoundVsFit,
}

/// Whether a profile carries enough evidence for its fit to contradict a
/// static bound: enough points, enough input-size span, enough cost
/// growth, and a tight fit.
pub fn strong_evidence(points: &[(f64, f64)], fit: &FitResult) -> bool {
    if points.len() < MIN_POINTS || fit.r2 < MIN_R2 {
        return false;
    }
    let (mut rms_min, mut rms_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut cost_min, mut cost_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(rms, cost) in points {
        rms_min = rms_min.min(rms);
        rms_max = rms_max.max(rms);
        cost_min = cost_min.min(cost);
        cost_max = cost_max.max(cost);
    }
    rms_max >= rms_min.max(1.0) * MIN_RMS_SPAN && cost_max >= cost_min.max(1.0) * MIN_COST_GROWTH
}

/// Classifies one routine: static `bound` vs the model fitted to `points`.
pub fn classify(bound: Bound, points: &[(f64, f64)]) -> (BoundVsFit, Option<FitResult>) {
    let fit = match fit_verdict(points) {
        FitVerdict::Fitted(f) => f,
        FitVerdict::InsufficientData(_) => return (BoundVsFit::Consistent, None),
    };
    let dynamic = model_bound(fit.model);
    let verdict = if bound == Bound::Unknown || dynamic == bound {
        // Unknown dominates everything; equality is agreement.
        BoundVsFit::Consistent
    } else if !strong_evidence(points, &fit) {
        // Too little data to contradict anything — any finite profile is
        // consistent with any bound.
        BoundVsFit::Consistent
    } else if dynamic > bound {
        BoundVsFit::Unsound
    } else {
        BoundVsFit::Imprecise
    };
    (verdict, Some(fit))
}

/// Full differential over a program: per-routine `(rms, cost)` point sets
/// (indexed by routine id, parallel to `report.bounds`) against the
/// inferred bounds.
pub fn compare(report: &BoundReport, points: &[Vec<(f64, f64)>]) -> Vec<RoutineComparison> {
    report
        .bounds
        .iter()
        .map(|rb| {
            let pts: &[(f64, f64)] = points.get(rb.func).map(Vec::as_slice).unwrap_or(&[]);
            let (verdict, fit) = classify(rb.bound, pts);
            RoutineComparison {
                func: rb.func,
                name: rb.name.clone(),
                bound: rb.bound,
                fit,
                points: pts.len(),
                verdict,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strong-evidence point sets for a given cost function.
    fn profile(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        (1..=16).map(|i| (i as f64 * 8.0, f(i as f64 * 8.0))).collect()
    }

    #[test]
    fn equal_models_are_consistent() {
        let pts = profile(|n| 3.0 * n + 5.0);
        let (v, fit) = classify(Bound::Linear, &pts);
        assert_eq!(v, BoundVsFit::Consistent);
        assert_eq!(fit.unwrap().model, GrowthModel::Linear);
    }

    #[test]
    fn unknown_static_bound_is_always_consistent() {
        let pts = profile(|n| n * n);
        assert_eq!(classify(Bound::Unknown, &pts).0, BoundVsFit::Consistent);
    }

    #[test]
    fn loose_static_bound_is_imprecise() {
        let pts = profile(|n| 2.0 * n);
        let (v, _) = classify(Bound::poly(2), &pts);
        assert_eq!(v, BoundVsFit::Imprecise);
    }

    #[test]
    fn fit_above_static_bound_is_unsound() {
        let pts = profile(|n| n * n);
        let (v, _) = classify(Bound::Linear, &pts);
        assert_eq!(v, BoundVsFit::Unsound);
    }

    #[test]
    fn weak_evidence_never_contradicts() {
        // Three points of perfect quadratic growth: not enough.
        let pts: Vec<(f64, f64)> = (1..=3).map(|i| (i as f64, (i * i) as f64)).collect();
        assert_eq!(classify(Bound::Const, &pts).0, BoundVsFit::Consistent);
        // Many points but a constant input size: the fitter refuses.
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (8.0, 100.0 + i as f64)).collect();
        assert_eq!(classify(Bound::Const, &flat).0, BoundVsFit::Consistent);
        // Empty profile.
        assert_eq!(classify(Bound::Const, &[]).0, BoundVsFit::Consistent);
    }

    #[test]
    fn narrow_span_is_weak_evidence() {
        // Plenty of points but rms barely moves: 4× span not met.
        let pts: Vec<(f64, f64)> = (0..12).map(|i| (64.0 + i as f64, 64.0 + i as f64)).collect();
        assert_eq!(classify(Bound::Const, &pts).0, BoundVsFit::Consistent);
    }

    #[test]
    fn model_bound_covers_every_model() {
        for &m in GrowthModel::ALL.iter() {
            let b = model_bound(m);
            assert!(b < Bound::Unknown, "{m:?} must map to a finite bound");
        }
        assert!(model_bound(GrowthModel::Exponential) > model_bound(GrowthModel::Cubic));
    }

    #[test]
    fn compare_walks_all_routines() {
        use crate::infer::infer_functions;
        let module = aprof_vm::asm::parse_module(
            "func main() {\nentry:\n    r0 = const 1\n    ret r0\n}",
        )
        .unwrap();
        let report = infer_functions(&module.functions);
        let out = compare(&report, &[profile(|n| n)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "main");
        // Const static bound vs linear fit on strong evidence: unsound —
        // exactly what the corpus oracle screams about.
        assert_eq!(out[0].verdict, BoundVsFit::Unsound);
    }
}
