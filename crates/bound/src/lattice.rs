//! The symbolic cost-bound lattice.
//!
//! Bounds live on the totally ordered lattice
//!
//! ```text
//! Const ⊑ Log ⊑ Linear ⊑ Linearithmic ⊑ Poly(2) ⊑ … ⊑ Poly(8)
//!       ⊑ Exponential ⊑ Unknown
//! ```
//!
//! with two operations: [`join`](Bound::join) (least upper bound — merging
//! control-flow alternatives) and [`compose`](Bound::compose) (product —
//! a loop's trip bound multiplied by its body's bound, or a call count
//! multiplied by a callee summary). Compose works on `(poly degree, log
//! degree)` exponent pairs and rounds *up* into the lattice where an exact
//! product has no element (`log²n` ⊑ `n`, `n·log²n` ⊑ `n²`, `n^k·log n` ⊑
//! `n^(k+1)`), so it over-approximates but never under-approximates.

/// Maximum polynomial degree before a bound collapses to [`Bound::Unknown`].
pub const MAX_POLY_DEGREE: u8 = 8;

/// A symbolic asymptotic cost bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `O(1)` — cost bounded by a constant.
    Const,
    /// `O(log n)`.
    Log,
    /// `O(n)`.
    Linear,
    /// `O(n log n)`.
    Linearithmic,
    /// `O(n^k)` for `k ≥ 2` (degree capped at [`MAX_POLY_DEGREE`]).
    Poly(u8),
    /// `2^{O(n)}` — branching recursion.
    Exponential,
    /// Top: nothing could be established. Always a sound answer.
    Unknown,
}

impl Bound {
    /// Normalizing polynomial constructor: degree 0 is [`Bound::Const`],
    /// degree 1 is [`Bound::Linear`], degrees above [`MAX_POLY_DEGREE`]
    /// collapse to [`Bound::Unknown`].
    pub fn poly(degree: u8) -> Bound {
        match degree {
            0 => Bound::Const,
            1 => Bound::Linear,
            d if d <= MAX_POLY_DEGREE => Bound::Poly(d),
            _ => Bound::Unknown,
        }
    }

    /// Total-order rank (strictly increasing along the lattice).
    fn rank(self) -> u32 {
        match self {
            Bound::Const => 0,
            Bound::Log => 1,
            Bound::Linear => 2,
            Bound::Linearithmic => 3,
            Bound::Poly(k) => 10 + u32::from(k.max(2)),
            Bound::Exponential => 100,
            Bound::Unknown => 200,
        }
    }

    /// `(poly degree, log degree)` exponents, for the finite elements.
    fn degrees(self) -> Option<(u8, u8)> {
        match self {
            Bound::Const => Some((0, 0)),
            Bound::Log => Some((0, 1)),
            Bound::Linear => Some((1, 0)),
            Bound::Linearithmic => Some((1, 1)),
            Bound::Poly(k) => Some((k, 0)),
            Bound::Exponential | Bound::Unknown => None,
        }
    }

    /// Rounds an exponent pair up into the lattice.
    fn from_degrees(p: u8, l: u8) -> Bound {
        match (p, l) {
            (0, 0) => Bound::Const,
            (0, 1) => Bound::Log,
            // log^l n ⊑ n for any fixed l ≥ 2.
            (0, _) => Bound::Linear,
            (1, 0) => Bound::Linear,
            (1, 1) => Bound::Linearithmic,
            // n·log^l n ⊑ n² for any fixed l ≥ 2.
            (1, _) => Bound::poly(2),
            (k, 0) => Bound::poly(k),
            // n^k·log^l n ⊑ n^(k+1).
            (k, _) => Bound::poly(k.saturating_add(1)),
        }
    }

    /// Least upper bound: the slower-growing side is absorbed.
    #[must_use]
    pub fn join(self, other: Bound) -> Bound {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }

    /// Product: the bound of running `other` once per unit of `self` (loop
    /// trip bound × body bound, recursion depth × per-invocation bound).
    /// Over-approximates where the exact product leaves the lattice;
    /// [`Bound::Const`] is the identity, [`Bound::Unknown`] is absorbing,
    /// and [`Bound::Exponential`] absorbs every finite factor
    /// (`2^{O(n)}·n^k ⊆ 2^{O(n)}`).
    #[must_use]
    pub fn compose(self, other: Bound) -> Bound {
        match (self.degrees(), other.degrees()) {
            (Some((p1, l1)), Some((p2, l2))) => {
                let p = p1.saturating_add(p2);
                if p > MAX_POLY_DEGREE {
                    Bound::Unknown
                } else {
                    Bound::from_degrees(p, l1.saturating_add(l2))
                }
            }
            _ => {
                if self == Bound::Unknown || other == Bound::Unknown {
                    Bound::Unknown
                } else {
                    Bound::Exponential
                }
            }
        }
    }

    /// Conventional asymptotic notation (stable: used in golden files).
    pub fn notation(self) -> String {
        match self {
            Bound::Const => "O(1)".into(),
            Bound::Log => "O(log n)".into(),
            Bound::Linear => "O(n)".into(),
            Bound::Linearithmic => "O(n log n)".into(),
            Bound::Poly(k) => format!("O(n^{k})"),
            Bound::Exponential => "O(2^n)".into(),
            Bound::Unknown => "unknown".into(),
        }
    }

    /// Inverse of [`notation`](Self::notation), for golden-file parsing.
    pub fn from_notation(s: &str) -> Option<Bound> {
        match s {
            "O(1)" => Some(Bound::Const),
            "O(log n)" => Some(Bound::Log),
            "O(n)" => Some(Bound::Linear),
            "O(n log n)" => Some(Bound::Linearithmic),
            "O(2^n)" => Some(Bound::Exponential),
            "unknown" => Some(Bound::Unknown),
            _ => {
                let k = s.strip_prefix("O(n^")?.strip_suffix(')')?;
                let k: u8 = k.parse().ok()?;
                (2..=MAX_POLY_DEGREE).contains(&k).then_some(Bound::Poly(k))
            }
        }
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN: [Bound; 8] = [
        Bound::Const,
        Bound::Log,
        Bound::Linear,
        Bound::Linearithmic,
        Bound::Poly(2),
        Bound::Poly(3),
        Bound::Exponential,
        Bound::Unknown,
    ];

    #[test]
    fn chain_is_strictly_ordered() {
        for w in CHAIN.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn join_is_lub_on_the_chain() {
        for &a in &CHAIN {
            for &b in &CHAIN {
                let j = a.join(b);
                assert!(j >= a && j >= b);
                assert_eq!(j, b.join(a), "join must commute");
                assert!(j == a || j == b, "join on a chain picks a side");
            }
        }
        assert_eq!(Bound::Const.join(Bound::Const), Bound::Const, "idempotent");
    }

    #[test]
    fn compose_identity_and_absorption() {
        for &b in &CHAIN {
            assert_eq!(Bound::Const.compose(b), b, "Const is the identity");
            assert_eq!(b.compose(Bound::Const), b);
            assert_eq!(Bound::Unknown.compose(b), Bound::Unknown, "Unknown absorbs");
        }
        assert_eq!(Bound::Exponential.compose(Bound::Poly(3)), Bound::Exponential);
        assert_eq!(Bound::Exponential.compose(Bound::Unknown), Bound::Unknown);
    }

    #[test]
    fn compose_poly_arithmetic() {
        assert_eq!(Bound::Linear.compose(Bound::Linear), Bound::Poly(2));
        assert_eq!(Bound::Linear.compose(Bound::Poly(2)), Bound::Poly(3));
        assert_eq!(Bound::Poly(2).compose(Bound::Poly(2)), Bound::Poly(4));
        assert_eq!(Bound::Log.compose(Bound::Linear), Bound::Linearithmic);
        assert_eq!(Bound::Linear.compose(Bound::Log), Bound::Linearithmic);
        // Rounded-up products: the result dominates the exact value.
        assert_eq!(Bound::Log.compose(Bound::Log), Bound::Linear);
        assert_eq!(Bound::Linearithmic.compose(Bound::Log), Bound::Poly(2));
        // n²·log n has no lattice element and n² sits *below* it: round up.
        assert_eq!(Bound::Linearithmic.compose(Bound::Linear), Bound::Poly(3));
        assert_eq!(Bound::Linearithmic.compose(Bound::Linearithmic), Bound::Poly(3));
        // Degree overflow goes to top, not around.
        assert_eq!(Bound::Poly(8).compose(Bound::Linear), Bound::Unknown);
    }

    #[test]
    fn compose_is_monotone() {
        for &a in &CHAIN {
            for &b in &CHAIN {
                for &c in &CHAIN {
                    if b <= c {
                        assert!(
                            a.compose(b) <= a.compose(c),
                            "compose not monotone: {a} ⊗ {b} vs {a} ⊗ {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn poly_constructor_normalizes() {
        assert_eq!(Bound::poly(0), Bound::Const);
        assert_eq!(Bound::poly(1), Bound::Linear);
        assert_eq!(Bound::poly(2), Bound::Poly(2));
        assert_eq!(Bound::poly(9), Bound::Unknown);
    }

    #[test]
    fn notation_round_trips() {
        for &b in &CHAIN {
            assert_eq!(Bound::from_notation(&b.notation()), Some(b), "{b}");
        }
        assert_eq!(Bound::from_notation("O(n^9)"), None);
        assert_eq!(Bound::from_notation("garbage"), None);
    }
}
