//! The bound-inference pass: loop trip classification on natural loops,
//! recursion analysis over call-graph SCCs, and bottom-up interprocedural
//! composition.
//!
//! Everything here rounds *up*: any loop, update, or recursion shape the
//! pass does not recognize contributes [`Bound::Unknown`] (or, for
//! branching recursion, [`Bound::Exponential`]) rather than a guess. The
//! soundness claim — checked dynamically by the corpus differential — is
//! that the inferred bound never sits *below* the growth a real execution
//! exhibits.

use aprof_check::cfg::{self, natural_loops, LoopForest, NaturalLoop};
use aprof_check::diag::{Diagnostic, Severity};
use aprof_vm::ir::{BinOp, CmpOp, Function, Instr, Program, Reg, Terminator};

use crate::lattice::Bound;

/// The inferred bound of one routine.
#[derive(Debug, Clone)]
pub struct RoutineBound {
    /// Function index (equal to the routine id the profilers use).
    pub func: usize,
    /// Function name.
    pub name: String,
    /// The inferred symbolic cost bound (inclusive of callees).
    pub bound: Bound,
    /// Whether the routine participates in recursion.
    pub recursive: bool,
}

/// Size counters for throughput reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundStats {
    /// Functions analyzed.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total instructions (terminators included).
    pub instrs: usize,
    /// Natural loops classified.
    pub loops: usize,
}

/// Everything the bound pass found out about one program.
#[derive(Debug, Clone, Default)]
pub struct BoundReport {
    /// Per-routine bounds, indexed by function id.
    pub bounds: Vec<RoutineBound>,
    /// B-code diagnostics (B301 notes, B302–B304 lints), sorted like
    /// `aprof-check` sorts: (function, block, instruction, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Program size counters.
    pub stats: BoundStats,
}

impl BoundReport {
    /// The bound of function `func`, `Unknown` when out of range.
    pub fn bound_of(&self, func: usize) -> Bound {
        self.bounds.get(func).map(|r| r.bound).unwrap_or(Bound::Unknown)
    }
}

/// How a register evolves across one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Induction {
    /// Strictly increasing by constant steps.
    Up,
    /// Strictly decreasing by constant steps.
    Down,
    /// Divided by a constant ≥ 2 (or shifted right) each iteration.
    Shrink,
    /// Multiplied by a constant ≥ 2 (or shifted left) each iteration.
    Grow,
}

/// Wrap guard for growth (doubling) loops: both the constant ceiling and
/// the growth multiplier must stay at or below this. With `i ≤ 2³¹` still
/// inside the loop and a factor `≤ 2³¹`, the next value is at most `2⁶²` —
/// no i64 overflow — so the iterate provably grows past the ceiling instead
/// of wrapping through `i64::MIN → 0` and looping forever.
const GROW_MAX: i64 = 1 << 31;

/// Scratch state for the input-linearity scan: the def sites on the
/// current dataflow path (cycle detection) and a work cap.
struct LinScan {
    visiting: Vec<(usize, usize)>,
    budget: u32,
}

impl Default for LinScan {
    fn default() -> LinScan {
        LinScan { visiting: Vec::new(), budget: 256 }
    }
}

/// Precomputed per-function facts shared by the passes.
struct FnInfo<'a> {
    f: &'a Function,
    forest: LoopForest,
    idom: Vec<Option<usize>>,
    /// `Some(v)` when every def of the register is `const v`.
    global_const: Vec<Option<i64>>,
    /// All def sites per register: (block, instr index).
    defs: Vec<Vec<(usize, usize)>>,
}

impl<'a> FnInfo<'a> {
    fn new(f: &'a Function) -> FnInfo<'a> {
        let nregs = f.regs as usize;
        let mut global_const: Vec<Option<i64>> = vec![None; nregs];
        let mut seen_def = vec![false; nregs];
        let mut defs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nregs];
        for (bi, block) in f.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                if let Some(Reg(r)) = instr.def() {
                    let r = r as usize;
                    if r >= nregs {
                        continue; // structurally invalid; E004 elsewhere
                    }
                    defs[r].push((bi, ii));
                    let v = match instr {
                        Instr::Const { value, .. } => Some(*value),
                        _ => None,
                    };
                    global_const[r] = match (seen_def[r], global_const[r], v) {
                        (false, _, v) => v,
                        (true, Some(old), Some(new)) if old == new => Some(old),
                        _ => None,
                    };
                    seen_def[r] = true;
                }
            }
        }
        FnInfo { forest: natural_loops(f), idom: cfg::idoms(f), f, global_const, defs }
    }

    /// The value of `reg` at (`block`, `idx`) when it is a compile-time
    /// constant: the nearest preceding def in the same block wins. Failing
    /// that, the all-defs-agree constant counts only when some def's block
    /// dominates the use (so a def — necessarily writing that same value —
    /// has executed on every path; without dominance the use could still
    /// see the zero-init or a caller-supplied parameter). Registers with no
    /// defs at all are the VM's zero-init — constant 0 — unless they are
    /// parameters.
    fn reg_const(&self, block: usize, idx: usize, reg: Reg) -> Option<i64> {
        for instr in self.f.blocks[block].instrs[..idx].iter().rev() {
            if instr.def() == Some(reg) {
                return match instr {
                    Instr::Const { value, .. } => Some(*value),
                    _ => None,
                };
            }
        }
        let r = usize::from(reg.0);
        let defs = self.defs.get(r)?;
        if defs.is_empty() {
            return if reg.0 < self.f.params { None } else { Some(0) };
        }
        let v = self.global_const.get(r).copied().flatten()?;
        defs.iter()
            .any(|&(b, _)| b != block && cfg::dominates(&self.idom, b, block))
            .then_some(v)
    }

    /// Defs of `reg` inside the loop body.
    fn defs_in_loop<'b>(
        &'b self,
        l: &'b NaturalLoop,
        reg: Reg,
    ) -> impl Iterator<Item = (usize, usize)> + 'b {
        self.defs
            .get(usize::from(reg.0))
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&(b, _)| l.contains(b))
    }

    /// Whether `reg` is unchanged inside the loop.
    fn invariant_in(&self, l: &NaturalLoop, reg: Reg) -> bool {
        self.defs_in_loop(l, reg).next().is_none()
    }

    /// Whether every def of `reg` *outside* the loop is a `const` (any
    /// values) — together with a constant limit this caps the trip count by
    /// a compile-time constant. Parameters (no defs, caller-set) fail;
    /// def-free non-parameter registers are the VM's zero-init and pass.
    fn const_initialized_outside(&self, l: &NaturalLoop, reg: Reg) -> bool {
        let r = usize::from(reg.0);
        let Some(defs) = self.defs.get(r) else { return false };
        let outside: Vec<&(usize, usize)> = defs.iter().filter(|&&(b, _)| !l.contains(b)).collect();
        if defs.is_empty() {
            return reg.0 >= self.f.params;
        }
        if outside.is_empty() {
            // Only in-loop defs: first iteration reads the zero-init (or a
            // param). Params are inputs; zero-init is constant.
            return reg.0 >= self.f.params;
        }
        outside.iter().all(|&&(b, i)| matches!(self.f.blocks[b].instrs[i], Instr::Const { .. }))
    }

    /// Whether the value `reg` holds on *entry* to loop `l` is at most
    /// linear in the input: every def outside the loop is a recognized
    /// linear computation (no outside defs means a parameter — the input
    /// itself — or the constant zero-init). In-loop defs are not
    /// consulted: callers only ask about registers whose in-loop updates
    /// they have already classified ([`induction`](Self::induction)
    /// constant steps or [`select_step_target`](Self::select_step_target)
    /// moves).
    fn linear_initialized_outside(&self, l: &NaturalLoop, reg: Reg, scan: &mut LinScan) -> bool {
        let Some(defs) = self.defs.get(usize::from(reg.0)) else { return false };
        defs.iter()
            .filter(|&&(b, _)| !l.contains(b))
            .all(|&(b, i)| self.instr_value_linear(b, i, scan))
    }

    /// Whether `reg`'s runtime value is provably at most linear in the
    /// routine's input, wherever it is read. Input atoms: unmodified
    /// parameters, `load` results and `sys_read` counts (input memory —
    /// cells the dynamic side's rms counts; the value-vs-size assumption
    /// of DESIGN.md §13.2), comparison results (always 0/1), and
    /// constants. Atoms compose through recognized linear operations:
    /// `mov`; `add`/`sub`/`min`/`max` of linear values; `mul`/`shl` by a
    /// constant; `div`/`shr`/`rem` of a linear dividend (result magnitude
    /// never exceeds it — division by zero yields 0 in guest semantics).
    /// Cyclic dataflow through a def site that sits *inside a loop* — a
    /// loop accumulator — is rejected: its value compounds across a trip
    /// count that may itself grow with the input (`sum 0..n` is Θ(n²)),
    /// which is exactly the shape that made the old invariant-limit rule
    /// unsound. A self-referential def *outside* every loop (a straight-
    /// line redefinition chain like `n = n + 1` after a reload) executes
    /// at most once per activation, so the apparent cycle is an infeasible
    /// flow and is skipped.
    fn value_linear(&self, reg: Reg, scan: &mut LinScan) -> bool {
        let Some(defs) = self.defs.get(usize::from(reg.0)) else { return false };
        if defs.is_empty() {
            return true; // parameter (input atom) or the VM's zero-init
        }
        defs.iter().all(|&(b, i)| self.instr_value_linear(b, i, scan))
    }

    /// [`value_linear`](Self::value_linear) for one defining instruction.
    fn instr_value_linear(&self, b: usize, i: usize, scan: &mut LinScan) -> bool {
        if scan.budget == 0 {
            return false; // work cap: stay near-linear, round up
        }
        scan.budget -= 1;
        if scan.visiting.contains(&(b, i)) {
            // This def feeds itself. Inside a loop that is a compounding
            // accumulator: reject. Outside every loop it runs at most
            // once, so the value cannot actually flow back into it.
            return !self.forest.loops.iter().any(|l| l.contains(b));
        }
        scan.visiting.push((b, i));
        let ok = self.def_value_linear(b, i, scan) || self.loop_value_bounded(b, i, scan);
        scan.visiting.pop();
        ok
    }

    /// The per-instruction case split of
    /// [`instr_value_linear`](Self::instr_value_linear).
    fn def_value_linear(&self, b: usize, i: usize, scan: &mut LinScan) -> bool {
        match &self.f.blocks[b].instrs[i] {
            Instr::Const { .. } | Instr::Load { .. } | Instr::Cmp { .. } => true,
            Instr::SysRead { .. } => true, // a count of input cells read
            Instr::Mov { src, .. } => self.value_linear(*src, scan),
            Instr::Bin { op, lhs, rhs, .. } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => {
                    self.value_linear(*lhs, scan) && self.value_linear(*rhs, scan)
                }
                BinOp::Mul => {
                    (self.reg_const(b, i, *lhs).is_some() && self.value_linear(*rhs, scan))
                        || (self.reg_const(b, i, *rhs).is_some()
                            && self.value_linear(*lhs, scan))
                }
                BinOp::Shl => {
                    self.reg_const(b, i, *rhs).is_some() && self.value_linear(*lhs, scan)
                }
                BinOp::Div | BinOp::Shr | BinOp::Rem => self.value_linear(*lhs, scan),
                _ => false,
            },
            _ => false,
        }
    }

    /// Fallback for a def site the generic per-instruction judgment
    /// rejects because its value feeds itself across loop iterations:
    /// accept the recognized shapes whose value provably stays within
    /// input-linear endpoints for the whole loop. The judgment runs
    /// against the innermost enclosing loop — the one whose iteration
    /// actually re-executes the def.
    fn loop_value_bounded(&self, b: usize, i: usize, scan: &mut LinScan) -> bool {
        let Some(reg) = self.f.blocks[b].instrs[i].def() else { return false };
        let Some(l) = self.forest.loops.iter().filter(|l| l.contains(b)).min_by_key(|l| l.len())
        else {
            return false;
        };
        match self.induction(l, reg) {
            // Const-step counter penned by an always-tested linear limit:
            // the value stays between its (linear) init and that limit,
            // give or take one iteration's worth of constant steps.
            Some(Induction::Up) => self.penned(l, reg, true, scan),
            Some(Induction::Down) => self.penned(l, reg, false, scan),
            // Halving/shifting toward zero: the magnitude never exceeds
            // the (linear) value the register entered the loop with.
            Some(Induction::Shrink) => self.linear_initialized_outside(l, reg, scan),
            // Doubling compounds across iterations; no exit test makes
            // the *value* linear.
            Some(Induction::Grow) => false,
            // Not an induction variable: the branch-free select shape —
            // every in-loop update leaves the value unchanged or moves
            // it to an input-linear target, so it stays within the span
            // of its (linear) entry value and those targets.
            None => {
                let sites: Vec<(usize, usize)> = self.defs_in_loop(l, reg).collect();
                !sites.is_empty()
                    && sites.iter().all(|&(db, di)| {
                        self.select_step_target(db, di, reg)
                            .is_some_and(|e| self.value_linear(e, scan))
                    })
                    && self.linear_initialized_outside(l, reg, scan)
            }
        }
    }

    /// Whether const-step counter `reg` (moving `up` or down) is penned
    /// in `l`: input-linear on entry, and some always-tested exit keeps
    /// iterating only while `reg` is on the entry side of a constant or
    /// invariant input-linear limit — so the value never strays more
    /// than one iteration's steps past either endpoint.
    fn penned(&self, l: &NaturalLoop, reg: Reg, up: bool, scan: &mut LinScan) -> bool {
        if !self.linear_initialized_outside(l, reg, scan) {
            return false;
        }
        let n = self.f.blocks.len();
        (0..n)
            .filter(|&e| l.contains(e))
            .filter(|&e| l.latches.iter().all(|&latch| cfg::dominates(&self.idom, e, latch)))
            .filter(|&e| {
                cfg::successors(&self.f.blocks[e].term, n).iter().any(|&s| !l.contains(s))
            })
            .any(|e| self.pen_exit(l, e, reg, up, scan))
    }

    /// One candidate exit for [`penned`](Self::penned): the continue
    /// condition must read `reg < lim` / `reg ≤ lim` for an upward
    /// counter (mirrored for a downward one) with `lim` constant at the
    /// test or loop-invariant and input-linear.
    fn pen_exit(&self, l: &NaturalLoop, e: usize, reg: Reg, up: bool, scan: &mut LinScan) -> bool {
        let block = &self.f.blocks[e];
        let Terminator::Br { cond, then_to, else_to } = &block.term else { return false };
        let in_then = l.contains(then_to.index());
        if in_then == l.contains(else_to.index()) {
            return false;
        }
        let Some((ci, Instr::Cmp { op, lhs, rhs, .. })) =
            block.instrs.iter().enumerate().rev().find(|(_, i)| i.def() == Some(*cond))
        else {
            return false;
        };
        let cont = if in_then { *op } else { negate(*op) };
        [(cont, *lhs, *rhs), (swap(cont), *rhs, *lhs)].into_iter().any(|(op, iv, lim)| {
            iv == reg
                && matches!(
                    (up, op),
                    (true, CmpOp::Lt | CmpOp::Le) | (false, CmpOp::Gt | CmpOp::Ge)
                )
                && (self.reg_const(e, ci, lim).is_some()
                    || (self.invariant_in(l, lim) && self.value_linear(lim, scan)))
        })
    }

    /// Recognizes the branch-free select step `x += (e − x) · g`,
    /// `g ∈ {0, 1}`, at def site (`b`, `i`) of `x`: the update leaves
    /// `x` unchanged (`g = 0`) or moves it to `e` (`g = 1`). All three
    /// instructions must sit in one block with `x` untouched between
    /// the subtraction and the add — otherwise the `x` subtracted out
    /// may differ from the `x` added to, and the step is not a select.
    /// Returns the target register `e`.
    fn select_step_target(&self, b: usize, i: usize, x: Reg) -> Option<Reg> {
        let Instr::Bin { op: BinOp::Add, lhs, rhs, .. } = &self.f.blocks[b].instrs[i] else {
            return None;
        };
        let d = if *lhs == x {
            *rhs
        } else if *rhs == x {
            *lhs
        } else {
            return None;
        };
        if d == x {
            return None; // x += x doubles
        }
        let (_, mi) = self.reaching_def_in_block(b, i, d)?;
        let Instr::Bin { op: BinOp::Mul, lhs: u, rhs: v, .. } = &self.f.blocks[b].instrs[mi]
        else {
            return None;
        };
        [(*u, *v), (*v, *u)].into_iter().find_map(|(g, t)| {
            if !self.boolean01(g, &mut Vec::new()) {
                return None;
            }
            let (_, si) = self.reaching_def_in_block(b, mi, t)?;
            let Instr::Bin { op: BinOp::Sub, lhs: e, rhs: x2, .. } = &self.f.blocks[b].instrs[si]
            else {
                return None;
            };
            (*x2 == x
                && !self.f.blocks[b].instrs[si + 1..i].iter().any(|ins| ins.def() == Some(x)))
            .then_some(*e)
        })
    }

    /// The nearest def of `reg` strictly before (`b`, `i`) in block `b`.
    fn reaching_def_in_block(&self, b: usize, i: usize, reg: Reg) -> Option<(usize, usize)> {
        self.f.blocks[b].instrs[..i]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, ins)| ins.def() == Some(reg))
            .map(|(j, _)| (b, j))
    }

    /// Whether `reg` can only ever hold 0 or 1: every def is a `cmp`, a
    /// 0/1 constant, or `mov`/`mul`/`and`/`min`/`max` over such values.
    /// Parameters are rejected (caller-supplied, arbitrary); def-free
    /// non-parameters are the zero-init. Cycles are assumed true — the
    /// set {0, 1} is closed under all the accepted operations, so a
    /// self-referential def cannot escape it (coinductive reading).
    fn boolean01(&self, reg: Reg, visiting: &mut Vec<u16>) -> bool {
        if reg.0 < self.f.params {
            return false;
        }
        if visiting.contains(&reg.0) {
            return true;
        }
        let Some(defs) = self.defs.get(usize::from(reg.0)) else { return false };
        if defs.is_empty() {
            return true; // zero-init
        }
        if visiting.len() > 8 {
            return false; // depth cap: stay cheap, round up
        }
        visiting.push(reg.0);
        let ok = defs.iter().all(|&(b, i)| match &self.f.blocks[b].instrs[i] {
            Instr::Cmp { .. } => true,
            Instr::Const { value, .. } => *value == 0 || *value == 1,
            Instr::Mov { src, .. } => self.boolean01(*src, visiting),
            Instr::Bin { op: BinOp::Mul | BinOp::And | BinOp::Min | BinOp::Max, lhs, rhs, .. } => {
                self.boolean01(*lhs, visiting) && self.boolean01(*rhs, visiting)
            }
            _ => false,
        });
        visiting.pop();
        ok
    }

    /// Like [`const_initialized_outside`], additionally demanding every
    /// initializing constant be ≥ 1 (for doubling loops, whose trip bound
    /// is only logarithmic from a positive start).
    fn positive_initialized_outside(&self, l: &NaturalLoop, reg: Reg) -> bool {
        let r = usize::from(reg.0);
        let Some(defs) = self.defs.get(r) else { return false };
        if defs.is_empty() || defs.iter().all(|&(b, _)| l.contains(b)) {
            return false; // zero-init (0) or parameter: not provably ≥ 1
        }
        // Every outside def must be a constant ≥ 1, and one of them must
        // dominate the header (else the first iteration could still read
        // the zero-init and the doubling would stall at 0).
        defs.iter().filter(|&&(b, _)| !l.contains(b)).all(|&(b, i)| {
            matches!(self.f.blocks[b].instrs[i], Instr::Const { value, .. } if value >= 1)
        }) && defs
            .iter()
            .any(|&(b, _)| !l.contains(b) && cfg::dominates(&self.idom, b, l.header))
    }

    /// Classifies how `reg` evolves per iteration of `l`, requiring every
    /// in-loop def to agree on a direction **and** at least one updating
    /// def to dominate every latch (progress is made on every full
    /// iteration — a conditionally skipped update bounds nothing).
    fn induction(&self, l: &NaturalLoop, reg: Reg) -> Option<Induction> {
        let mut kind: Option<Induction> = None;
        let mut dominating_update = false;
        let mut any = false;
        for (b, i) in self.defs_in_loop(l, reg) {
            any = true;
            let k = self.update_kind(b, i, reg)?;
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => return None, // mixed directions
            }
            if l.latches.iter().all(|&latch| cfg::dominates(&self.idom, b, latch)) {
                dominating_update = true;
            }
        }
        if !any || !dominating_update {
            return None;
        }
        kind
    }

    /// The update direction of one def of `reg`, when it is a recognized
    /// self-update with a constant operand.
    fn update_kind(&self, block: usize, idx: usize, reg: Reg) -> Option<Induction> {
        let Instr::Bin { op, dst, lhs, rhs } = &self.f.blocks[block].instrs[idx] else {
            return None;
        };
        debug_assert_eq!(*dst, reg);
        let const_of = |r: Reg| self.reg_const(block, idx, r);
        match op {
            BinOp::Add => {
                let step = if *lhs == reg {
                    const_of(*rhs)?
                } else if *rhs == reg {
                    const_of(*lhs)?
                } else {
                    return None;
                };
                match step {
                    s if s > 0 => Some(Induction::Up),
                    s if s < 0 => Some(Induction::Down),
                    _ => None,
                }
            }
            BinOp::Sub if *lhs == reg => match const_of(*rhs)? {
                s if s > 0 => Some(Induction::Down),
                s if s < 0 => Some(Induction::Up),
                _ => None,
            },
            BinOp::Div if *lhs == reg => (const_of(*rhs)? >= 2).then_some(Induction::Shrink),
            BinOp::Shr if *lhs == reg => {
                (1..=62).contains(&const_of(*rhs)?).then_some(Induction::Shrink)
            }
            BinOp::Mul => {
                let c = if *lhs == reg {
                    const_of(*rhs)?
                } else if *rhs == reg {
                    const_of(*lhs)?
                } else {
                    return None;
                };
                // Factor capped at GROW_MAX so iterate × factor cannot
                // wrap (see the Grow arm of `classify_oriented`).
                (2..=GROW_MAX).contains(&c).then_some(Induction::Grow)
            }
            BinOp::Shl if *lhs == reg => {
                (1..=31).contains(&const_of(*rhs)?).then_some(Induction::Grow)
            }
            _ => None,
        }
    }

    /// Classifies one always-tested exit of `l` (a `br` in block `e` with
    /// one successor outside the loop): the trip-count class its condition
    /// guarantees, or `None` when unrecognized.
    fn classify_exit(&self, l: &NaturalLoop, e: usize) -> Option<Bound> {
        let block = &self.f.blocks[e];
        let Terminator::Br { cond, then_to, else_to } = &block.term else { return None };
        let in_then = l.contains(then_to.index());
        let in_else = l.contains(else_to.index());
        if in_then == in_else {
            return None; // not an exit, or exits both ways (dead loop)
        }
        // The comparison that computes the branch condition, from this block.
        let (ci, cmp) =
            block.instrs.iter().enumerate().rev().find(|(_, i)| i.def() == Some(*cond))?;
        let Instr::Cmp { op, lhs, rhs, .. } = cmp else { return None };
        // Normalize to the *continue* condition (true keeps iterating).
        let cont = if in_then { *op } else { negate(*op) };
        // Try both orientations: induction on the left of the comparison.
        [(cont, *lhs, *rhs), (swap(cont), *rhs, *lhs)]
            .into_iter()
            .filter_map(|(op, iv, lim)| self.classify_oriented(l, e, ci, op, iv, lim))
            .min()
    }

    /// One orientation: continue while `iv <op> lim`, `iv` an induction
    /// variable, `lim` either loop-invariant or a constant at the test
    /// site (`(e, ci)` locates the comparison). A limit re-defined inside
    /// the loop still bounds the trip count when the value the test *sees*
    /// is always the same compile-time constant — e.g. a `const` hoisted
    /// into the header block, re-executed every iteration.
    fn classify_oriented(
        &self,
        l: &NaturalLoop,
        e: usize,
        ci: usize,
        op: CmpOp,
        iv: Reg,
        lim: Reg,
    ) -> Option<Bound> {
        let lim_const = self.reg_const(e, ci, lim);
        if lim_const.is_none() && !self.invariant_in(l, lim) {
            return None;
        }
        let kind = self.induction(l, iv)?;
        match (kind, op) {
            // Counter vs limit: constant trip when both ends are constants;
            // linear only when *both* ends are provably at most linear in
            // the routine's input (trips ≤ |limit − start| / step). An
            // invariant limit is not enough: a prior-loop accumulator is
            // invariant here yet its value can be super-linear in the
            // input (sum 0..n is Θ(n²)), which would break the soundness
            // claim of the bound-vs-fit differential.
            (Induction::Up, CmpOp::Lt | CmpOp::Le)
            | (Induction::Down, CmpOp::Gt | CmpOp::Ge) => {
                if lim_const.is_some() && self.const_initialized_outside(l, iv) {
                    Some(Bound::Const)
                } else {
                    let scan = &mut LinScan::default();
                    ((lim_const.is_some() || self.value_linear(lim, scan))
                        && self.linear_initialized_outside(l, iv, scan))
                    .then_some(Bound::Linear)
                    // endpoint not provably input-linear: Unknown
                }
            }
            // Halving toward a non-negative constant floor: logarithmic.
            // (A negative or unknown floor admits non-termination: i/2
            // reaches 0 and stays there, which still satisfies `i > lim`.)
            (Induction::Shrink, CmpOp::Gt | CmpOp::Ge) => {
                (lim_const? >= 0).then_some(Bound::Log)
            }
            // Doubling from a positive constant start toward a *constant*
            // ceiling at most GROW_MAX: logarithmic. (From 0 or negative,
            // doubling stalls; against a larger or non-constant ceiling the
            // wrapping multiply can cycle 2⁶² → i64::MIN → 0 and never
            // exit, so nothing bounds the loop.)
            (Induction::Grow, CmpOp::Lt | CmpOp::Le) => {
                (lim_const? <= GROW_MAX && self.positive_initialized_outside(l, iv))
                    .then_some(Bound::Log)
            }
            _ => None,
        }
    }

    /// The trip-count class of one natural loop: the tightest class any
    /// always-tested exit guarantees, or `Unknown`.
    fn classify_loop(&self, l: &NaturalLoop) -> Bound {
        let n = self.f.blocks.len();
        (0..n)
            .filter(|&e| l.contains(e))
            // Tested on every iteration: the exit dominates every latch.
            .filter(|&e| l.latches.iter().all(|&latch| cfg::dominates(&self.idom, e, latch)))
            // Actually exits: has a successor outside the loop.
            .filter(|&e| {
                cfg::successors(&self.f.blocks[e].term, n).iter().any(|&s| !l.contains(s))
            })
            .filter_map(|e| self.classify_exit(l, e))
            .min()
            .unwrap_or(Bound::Unknown)
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Le => CmpOp::Gt,
    }
}

fn swap(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// How one recursive call site shrinks its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SizeChange {
    /// `f(p - c)` for constant `c ≥ 1`: depth linear in the argument.
    Decrement,
    /// `f(p / c)` for constant `c ≥ 2` (divisor recorded): depth log.
    Halving(u64),
}

/// One self-recursive call site.
struct SelfSite {
    block: usize,
    instr: usize,
    change: Option<SizeChange>,
    /// Trip class of the tightest enclosing loop chain (`Const` when the
    /// site is not inside any loop).
    loop_factor: Bound,
}

struct Pass<'a> {
    infos: Vec<FnInfo<'a>>,
    summaries: Vec<Bound>,
    recursive: Vec<bool>,
    diags: Vec<Diagnostic>,
    loop_count: usize,
}

impl<'a> Pass<'a> {
    /// The per-block multiplicative factor from enclosing loops, using the
    /// precomputed per-loop trip classes.
    fn block_factor(trips: &[(usize, Bound)], info: &FnInfo<'_>, block: usize) -> Bound {
        info.forest
            .loops
            .iter()
            .zip(trips)
            .filter(|(l, _)| l.contains(block))
            .fold(Bound::Const, |acc, (_, &(_, t))| acc.compose(t))
    }

    /// Intra-procedural bound of function `fi` given finished callee
    /// summaries; calls to `self_skip` (the function itself, during
    /// recursion analysis) count as `Const`.
    fn intra(&mut self, fi: usize, self_skip: Option<usize>) -> Bound {
        let info = &self.infos[fi];
        if info.f.blocks.is_empty() {
            return Bound::Const;
        }
        if info.forest.irreducible {
            self.diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "B302",
                func: fi,
                block: None,
                instr: None,
                message: "irreducible control flow: no trip count can be assigned".into(),
            });
            return Bound::Unknown;
        }
        let trips: Vec<(usize, Bound)> =
            info.forest.loops.iter().map(|l| (l.header, info.classify_loop(l))).collect();
        self.loop_count += trips.len();
        let mut diags: Vec<Diagnostic> = trips
            .iter()
            .filter(|&&(_, t)| t == Bound::Unknown)
            .map(|&(header, _)| Diagnostic {
                severity: Severity::Warning,
                code: "B302",
                func: fi,
                block: Some(header),
                instr: None,
                message: "loop trip count not statically bounded (no recognized \
                          induction variable tested on every iteration)"
                    .into(),
            })
            .collect();
        let mut bound = Bound::Const;
        for (bi, block) in info.f.blocks.iter().enumerate() {
            if info.idom[bi].is_none() {
                continue; // unreachable (W101)
            }
            let factor = Self::block_factor(&trips, info, bi);
            let mut unit = Bound::Const;
            for instr in &block.instrs {
                if let Some((callee, _)) = instr.callee() {
                    let g = callee.index();
                    unit = unit.join(if Some(g) == self_skip {
                        Bound::Const
                    } else if g < self.summaries.len() {
                        self.summaries[g]
                    } else {
                        Bound::Unknown // out-of-range callee (E005)
                    });
                }
            }
            bound = bound.join(factor.compose(unit));
        }
        self.diags.append(&mut diags);
        bound
    }

    /// Recursion analysis for a self-recursive singleton SCC.
    fn recursive_bound(&mut self, fi: usize) -> Bound {
        let info = &self.infos[fi];
        if info.f.blocks.is_empty() {
            return Bound::Const;
        }
        if info.forest.irreducible {
            // intra() will emit B302 and return Unknown below.
            let body = self.intra(fi, Some(fi));
            debug_assert_eq!(body, Bound::Unknown);
            return Bound::Unknown;
        }
        let trips: Vec<(usize, Bound)> =
            info.forest.loops.iter().map(|l| (l.header, info.classify_loop(l))).collect();
        let mut sites: Vec<SelfSite> = Vec::new();
        for (bi, block) in info.f.blocks.iter().enumerate() {
            if info.idom[bi].is_none() {
                continue;
            }
            for (ii, instr) in block.instrs.iter().enumerate() {
                let Some((callee, args)) = instr.callee() else { continue };
                if callee.index() != fi {
                    continue;
                }
                let change = args
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &a)| size_change(info, bi, ii, a, j))
                    .min_by_key(|c| match c {
                        SizeChange::Halving(_) => 0, // prefer the tighter class
                        SizeChange::Decrement => 1,
                    });
                sites.push(SelfSite {
                    block: bi,
                    instr: ii,
                    change,
                    loop_factor: Self::block_factor(&trips, info, bi),
                });
            }
        }
        if sites.is_empty() {
            // The call graph has a self edge (cfg::callees scans every
            // block) but every self-call sits in an unreachable block
            // (idom None), which site collection skips: the recursion is
            // dead code and the intra-procedural bound stands.
            return self.intra(fi, Some(fi));
        }
        // Per-invocation cost excluding the recursion itself.
        let body = self.intra(fi, Some(fi));

        // Any unrecognized size change, or a site inside a loop we cannot
        // bound by a constant, defeats every depth argument.
        if let Some(bad) = sites.iter().find(|s| s.change.is_none()) {
            self.diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "B303",
                func: fi,
                block: Some(bad.block),
                instr: Some(bad.instr),
                message: "recursive call without a recognized size decrease \
                          (no argument is a constant decrement or division of a parameter)"
                    .into(),
            });
            return Bound::Unknown;
        }
        // A site inside a loop whose trip we cannot bound by a constant
        // defeats every depth argument; a halving site inside *any* loop
        // does too (t calls per level gives n^(log t) — degree unknown).
        let in_loop =
            |s: &SelfSite| self.infos[fi].forest.loops.iter().any(|l| l.contains(s.block));
        if let Some(bad) = sites.iter().find(|s| {
            s.loop_factor != Bound::Const
                || (matches!(s.change, Some(SizeChange::Halving(_))) && in_loop(s))
        }) {
            self.diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "B303",
                func: fi,
                block: Some(bad.block),
                instr: Some(bad.instr),
                message: "recursive call inside a loop: the branching factor cannot \
                          be bounded"
                    .into(),
            });
            return Bound::Unknown;
        }
        let all_halving = sites.iter().all(|s| matches!(s.change, Some(SizeChange::Halving(_))));
        // A decrementing site inside even a constant-trip loop branches.
        let branching = sites.len() >= 2 || sites.iter().any(in_loop);
        match (all_halving, branching) {
            (true, false) => Bound::Log.compose(body),
            (true, true) => {
                // Master-theorem-lite: a = number of subproblems, b = the
                // smallest divisor; depth log_b n, subproblem count
                // n^(log_b a) with the exponent rounded up to stay sound.
                let a = sites.len() as u64;
                let b = sites
                    .iter()
                    .filter_map(|s| match s.change {
                        Some(SizeChange::Halving(div)) => Some(div),
                        _ => None,
                    })
                    .min()
                    .unwrap_or(2)
                    .max(2);
                let mut d: u8 = 0;
                let mut pow: u64 = 1;
                while pow < a && d < 16 {
                    pow = pow.saturating_mul(b);
                    d += 1;
                }
                master(body, d)
            }
            (false, false) => Bound::Linear.compose(body),
            (false, true) => {
                let site = &sites[0];
                self.diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "B304",
                    func: fi,
                    block: Some(site.block),
                    instr: Some(site.instr),
                    message: format!(
                        "branching recursion ({} decrementing self-calls per \
                         invocation): exponential bound",
                        sites.len().max(2)
                    ),
                });
                if body == Bound::Unknown {
                    Bound::Unknown
                } else {
                    Bound::Exponential
                }
            }
        }
    }
}

/// `T(n) = a·T(n/b) + body(n)` with `n^d ≥` the subproblem count: the
/// master-theorem case split on the body's polynomial degree vs `d`.
fn master(body: Bound, d: u8) -> Bound {
    match body {
        Bound::Unknown => Bound::Unknown,
        Bound::Exponential => Bound::Exponential,
        Bound::Const => Bound::poly(d).join(Bound::Log), // depth alone is log
        _ => {
            let (p, l) = match body {
                Bound::Log => (0, 1),
                Bound::Linear => (1, 0),
                Bound::Linearithmic => (1, 1),
                Bound::Poly(k) => (k, 0),
                _ => unreachable!(),
            };
            use std::cmp::Ordering;
            match p.cmp(&d) {
                Ordering::Less => Bound::poly(d),
                // Equal degrees gain one log factor: n^d · log n.
                Ordering::Equal => match (p, l) {
                    (1, 0) => Bound::Linearithmic,
                    (k, _) => Bound::poly(k.saturating_add(1)), // n^k log^{l+1} n ⊑ n^{k+1}
                },
                Ordering::Greater => body,
            }
        }
    }
}

/// Whether argument `a` of a self-call at (`block`, `idx`) is a recognized
/// shrink of parameter `j`: the defining instruction (nearest in-block def,
/// else the unique def in the function) subtracts a positive constant from,
/// or divides by a constant ≥ 2, the *unmodified* parameter register `rj`.
fn size_change(info: &FnInfo<'_>, block: usize, idx: usize, a: Reg, j: usize) -> Option<SizeChange> {
    let param = Reg(u16::try_from(j).ok()?);
    if param.0 >= info.f.params {
        return None;
    }
    // The parameter must still hold the caller's value.
    if !info.defs.get(usize::from(param.0)).is_none_or(|d| d.is_empty()) {
        return None;
    }
    let (db, di) = info.f.blocks[block].instrs[..idx]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, ins)| ins.def() == Some(a))
        .map(|(i, _)| (block, i))
        .or_else(|| {
            let defs = info.defs.get(usize::from(a.0))?;
            (defs.len() == 1).then(|| defs[0])
        })?;
    let Instr::Bin { op, lhs, rhs, .. } = &info.f.blocks[db].instrs[di] else { return None };
    // Operand constness is judged at the *def* site: when the def was
    // found on the unique-def path it can sit in another block, and the
    // operand register may be redefined between there and the call — a
    // step that is positive at the def (growing recursion) must not read
    // as a negative call-site constant and pass as a decrement.
    let const_of = |r: Reg| info.reg_const(db, di, r);
    match op {
        BinOp::Sub if *lhs == param => {
            (const_of(*rhs)? >= 1).then_some(SizeChange::Decrement)
        }
        BinOp::Add if *lhs == param => {
            (const_of(*rhs)? <= -1).then_some(SizeChange::Decrement)
        }
        BinOp::Add if *rhs == param => {
            (const_of(*lhs)? <= -1).then_some(SizeChange::Decrement)
        }
        BinOp::Div if *lhs == param => {
            let c = const_of(*rhs)?;
            (c >= 2).then_some(SizeChange::Halving(c as u64))
        }
        BinOp::Shr if *lhs == param => {
            let c = const_of(*rhs)?;
            (1..=62).contains(&c).then(|| SizeChange::Halving(1u64 << c.min(32)))
        }
        _ => None,
    }
}

/// Iterative Tarjan SCC over the call graph; SCCs are emitted callees-first
/// (reverse topological order of the condensation).
fn sccs(graph: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();
    // call frames: (node, edge cursor)
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < graph[v].len() {
                let w = graph[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Infers a cost bound for every function, bottom-up over the call graph.
pub fn infer_functions(funcs: &[Function]) -> BoundReport {
    let infos: Vec<FnInfo<'_>> = funcs.iter().map(FnInfo::new).collect();
    let graph = cfg::callees(funcs);
    let mut pass = Pass {
        infos,
        summaries: vec![Bound::Unknown; funcs.len()],
        recursive: vec![false; funcs.len()],
        diags: Vec::new(),
        loop_count: 0,
    };
    for comp in sccs(&graph) {
        if comp.len() > 1 {
            for &fi in &comp {
                pass.recursive[fi] = true;
                pass.summaries[fi] = Bound::Unknown;
                pass.diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "B303",
                    func: fi,
                    block: None,
                    instr: None,
                    message: format!(
                        "mutual recursion across {} functions: no size-change \
                         argument is attempted",
                        comp.len()
                    ),
                });
            }
            continue;
        }
        let fi = comp[0];
        let self_recursive = graph[fi].contains(&fi);
        pass.recursive[fi] = self_recursive;
        pass.summaries[fi] = if self_recursive {
            pass.recursive_bound(fi)
        } else {
            pass.intra(fi, None)
        };
    }
    let mut report = BoundReport {
        stats: BoundStats {
            functions: funcs.len(),
            blocks: funcs.iter().map(|f| f.blocks.len()).sum(),
            instrs: funcs.iter().flat_map(|f| &f.blocks).map(|b| b.instrs.len() + 1).sum(),
            loops: pass.loop_count,
        },
        ..BoundReport::default()
    };
    report.bounds = funcs
        .iter()
        .enumerate()
        .map(|(i, f)| RoutineBound {
            func: i,
            name: f.name.clone(),
            bound: pass.summaries[i],
            recursive: pass.recursive[i],
        })
        .collect();
    report.diagnostics = pass.diags;
    for rb in &report.bounds {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Note,
            code: "B301",
            func: rb.func,
            block: None,
            instr: None,
            message: format!(
                "inferred static cost bound {}{}",
                rb.bound.notation(),
                if rb.recursive { " (recursive)" } else { "" }
            ),
        });
    }
    report.diagnostics.sort_by_key(|d| (d.func, d.block, d.instr, d.code));
    report
}

/// Infers bounds for a validated [`Program`].
pub fn infer_program(program: &Program) -> BoundReport {
    infer_functions(program.functions())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aprof_vm::asm;

    fn bounds_of(src: &str) -> BoundReport {
        let module = asm::parse_module(src).expect("witness parses");
        infer_functions(&module.functions)
    }

    fn bound_by_name(r: &BoundReport, name: &str) -> Bound {
        r.bounds.iter().find(|b| b.name == name).map(|b| b.bound).unwrap()
    }

    // --- One witness guest program per bound class. ---

    #[test]
    fn witness_const() {
        // A constant-trip counted loop: 0..10 against a constant limit.
        let r = bounds_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = const 0\n    r1 = const 10\n    jmp head\n\
             head:\n    r2 = clt r0, r1\n    br r2, body, exit\n\
             body:\n    r3 = const 1\n    r0 = add r0, r3\n    jmp head\n\
             exit:\n    ret r0\n}",
        );
        assert_eq!(bound_by_name(&r, "main"), Bound::Const, "{:?}", r.diagnostics);
    }

    #[test]
    fn witness_log() {
        // Halving loop: while (n > 0) n /= 2.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 0\n    ret r0\n}\n\
             func halve(1) regs=4 {\n\
             entry:\n    jmp head\n\
             head:\n    r1 = const 0\n    r2 = cgt r0, r1\n    br r2, body, exit\n\
             body:\n    r3 = const 2\n    r0 = div r0, r3\n    jmp head\n\
             exit:\n    ret r0\n}",
        );
        assert_eq!(bound_by_name(&r, "halve"), Bound::Log, "{:?}", r.diagnostics);
    }

    #[test]
    fn witness_linear() {
        // sum(n): counter vs the parameter.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call sum(r0)\n    ret r1\n}\n\
             func sum(1) regs=4 {\n\
             entry:\n    r1 = const 0\n    r2 = const 0\n    jmp head\n\
             head:\n    r3 = clt r2, r0\n    br r3, body, exit\n\
             body:\n    r1 = add r1, r2\n    r3 = const 1\n    r2 = add r2, r3\n    jmp head\n\
             exit:\n    ret r1\n}",
        );
        assert_eq!(bound_by_name(&r, "sum"), Bound::Linear, "{:?}", r.diagnostics);
        // main inherits the callee bound (no constant-argument
        // specialization — documented imprecision).
        assert_eq!(bound_by_name(&r, "main"), Bound::Linear);
    }

    #[test]
    fn witness_linearithmic() {
        // Merge-sort shape: two halving self-calls plus a linear merge.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 32\n    r1 = call msort(r0)\n    ret r1\n}\n\
             func msort(1) regs=8 {\n\
             entry:\n    r1 = const 2\n    r2 = clt r0, r1\n    br r2, base, rec\n\
             base:\n    ret r0\n\
             rec:\n    r3 = const 2\n    r4 = div r0, r3\n    r5 = call msort(r4)\n\
             \n    r6 = div r0, r3\n    r7 = call msort(r6)\n    jmp merge\n\
             merge:\n    r1 = const 0\n    jmp mhead\n\
             mhead:\n    r2 = clt r1, r0\n    br r2, mbody, mexit\n\
             mbody:\n    r3 = const 1\n    r1 = add r1, r3\n    jmp mhead\n\
             mexit:\n    r6 = add r5, r7\n    ret r6\n}",
        );
        assert_eq!(bound_by_name(&r, "msort"), Bound::Linearithmic, "{:?}", r.diagnostics);
    }

    #[test]
    fn witness_poly2() {
        // Nested counter loops, both bounded by the parameter.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 8\n    r1 = call sq(r0)\n    ret r1\n}\n\
             func sq(1) regs=8 {\n\
             entry:\n    r1 = const 0\n    r2 = const 0\n    jmp ohead\n\
             ohead:\n    r3 = clt r2, r0\n    br r3, oinit, oexit\n\
             oinit:\n    r4 = const 0\n    jmp ihead\n\
             ihead:\n    r5 = clt r4, r0\n    br r5, ibody, olatch\n\
             ibody:\n    r6 = const 1\n    r4 = add r4, r6\n    r1 = add r1, r4\n    jmp ihead\n\
             olatch:\n    r6 = const 1\n    r2 = add r2, r6\n    jmp ohead\n\
             oexit:\n    ret r1\n}",
        );
        assert_eq!(bound_by_name(&r, "sq"), Bound::Poly(2), "{:?}", r.diagnostics);
    }

    #[test]
    fn witness_exponential() {
        // fib(n): two decrementing self-calls.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call fib(r0)\n    ret r1\n}\n\
             func fib(1) regs=8 {\n\
             entry:\n    r1 = const 2\n    r2 = clt r0, r1\n    br r2, base, rec\n\
             base:\n    ret r0\n\
             rec:\n    r3 = const 1\n    r4 = sub r0, r3\n    r5 = call fib(r4)\n\
             \n    r6 = const 2\n    r7 = sub r0, r6\n    r1 = call fib(r7)\n\
             \n    r5 = add r5, r1\n    ret r5\n}",
        );
        assert_eq!(bound_by_name(&r, "fib"), Bound::Exponential, "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == "B304"), "{:?}", r.diagnostics);
    }

    #[test]
    fn witness_unknown() {
        // Loop condition derived from memory: no induction variable.
        let r = bounds_of(
            "func main() regs=8 {\n\
             entry:\n    r0 = const 4\n    r1 = alloc r0\n    jmp head\n\
             head:\n    r2 = load r1, 0\n    br r2, body, exit\n\
             body:\n    r3 = const 1\n    store r3, r1, 0\n    jmp head\n\
             exit:\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "main"), Bound::Unknown, "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == "B302"), "{:?}", r.diagnostics);
    }

    // --- Structural behaviours. ---

    #[test]
    fn decrement_recursion_is_linear_depth() {
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call count(r0)\n    ret r1\n}\n\
             func count(1) regs=4 {\n\
             entry:\n    r1 = const 0\n    r2 = cgt r0, r1\n    br r2, rec, base\n\
             base:\n    ret r0\n\
             rec:\n    r3 = const 1\n    r1 = sub r0, r3\n    r2 = call count(r1)\n    ret r2\n}",
        );
        assert_eq!(bound_by_name(&r, "count"), Bound::Linear, "{:?}", r.diagnostics);
        assert!(r.bounds.iter().any(|b| b.name == "count" && b.recursive));
    }

    #[test]
    fn halving_recursion_is_log_depth() {
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call bs(r0)\n    ret r1\n}\n\
             func bs(1) regs=4 {\n\
             entry:\n    r1 = const 0\n    r2 = cgt r0, r1\n    br r2, rec, base\n\
             base:\n    ret r0\n\
             rec:\n    r3 = const 2\n    r1 = div r0, r3\n    r2 = call bs(r1)\n    ret r2\n}",
        );
        assert_eq!(bound_by_name(&r, "bs"), Bound::Log, "{:?}", r.diagnostics);
    }

    #[test]
    fn mutual_recursion_is_unknown() {
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 1\n    call ping(r0)\n    ret\n}\n\
             func ping(1) {\nentry:\n    br r0, go, stop\n\
             go:\n    call pong(r0)\n    ret\nstop:\n    ret\n}\n\
             func pong(1) {\nentry:\n    call ping(r0)\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "ping"), Bound::Unknown);
        assert_eq!(bound_by_name(&r, "pong"), Bound::Unknown);
        assert!(r.diagnostics.iter().any(|d| d.code == "B303"));
    }

    #[test]
    fn unrecognized_size_change_is_unknown() {
        // Recursing on the unchanged parameter.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 1\n    call spin(r0)\n    ret\n}\n\
             func spin(1) regs=4 {\n\
             entry:\n    br r0, rec, base\n\
             base:\n    ret\n\
             rec:\n    call spin(r0)\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "spin"), Bound::Unknown);
        assert!(r.diagnostics.iter().any(|d| d.code == "B303"), "{:?}", r.diagnostics);
    }

    #[test]
    fn conditional_update_does_not_bound() {
        // The increment is skipped on one path: no progress guarantee.
        let r = bounds_of(
            "func main(0) regs=8 {\n\
             entry:\n    r0 = const 0\n    r1 = const 10\n    r4 = const 4\n    r5 = alloc r4\n    jmp head\n\
             head:\n    r2 = clt r0, r1\n    br r2, body, exit\n\
             body:\n    r3 = load r5, 0\n    br r3, bump, skip\n\
             bump:\n    r6 = const 1\n    r0 = add r0, r6\n    jmp skip\n\
             skip:\n    jmp head\n\
             exit:\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "main"), Bound::Unknown, "{:?}", r.diagnostics);
    }

    #[test]
    fn accumulator_limit_is_unknown() {
        // A loop bounded by a prior loop's accumulator: the limit is
        // loop-invariant, but its *value* (sum 0..n ~ n²) is super-linear
        // in the input — classifying it Linear was unsound.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call f(r0)\n    ret r1\n}\n\
             func f(1) regs=8 {\n\
             entry:\n    r1 = const 0\n    r2 = const 0\n    jmp h1\n\
             h1:\n    r3 = clt r2, r0\n    br r3, b1, mid\n\
             b1:\n    r1 = add r1, r2\n    r4 = const 1\n    r2 = add r2, r4\n    jmp h1\n\
             mid:\n    r5 = const 0\n    jmp h2\n\
             h2:\n    r6 = clt r5, r1\n    br r6, b2, exit\n\
             b2:\n    r7 = const 1\n    r5 = add r5, r7\n    jmp h2\n\
             exit:\n    ret r1\n}",
        );
        assert_eq!(bound_by_name(&r, "f"), Bound::Unknown, "{:?}", r.diagnostics);
    }

    #[test]
    fn load_bounded_loop_is_linear() {
        // A limit read from guest memory is an input atom (the rms the
        // dynamic side measures counts that cell): still Linear.
        let r = bounds_of(
            "func main() regs=8 {\n\
             entry:\n    r0 = const 4\n    r1 = alloc r0\n    r2 = load r1, 0\n\
             \n    r3 = const 0\n    jmp head\n\
             head:\n    r4 = clt r3, r2\n    br r4, body, exit\n\
             body:\n    r5 = const 1\n    r3 = add r3, r5\n    jmp head\n\
             exit:\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "main"), Bound::Linear, "{:?}", r.diagnostics);
    }

    #[test]
    fn doubling_loop_needs_wrap_safe_constant_ceiling() {
        // i *= 2 toward a small constant ceiling: Log.
        let small = "func main() regs=4 {\n\
             entry:\n    r0 = const 1\n    r1 = const 1024\n    jmp head\n\
             head:\n    r2 = clt r0, r1\n    br r2, body, exit\n\
             body:\n    r3 = const 2\n    r0 = mul r0, r3\n    jmp head\n\
             exit:\n    ret r0\n}";
        let r = bounds_of(small);
        assert_eq!(bound_by_name(&r, "main"), Bound::Log, "{:?}", r.diagnostics);
        // Against a ceiling past 2³¹ the wrapping multiply can cycle
        // 2⁶² → i64::MIN → 0 and never exit: Unknown, not Log.
        let huge = small.replace("const 1024", "const 4611686018427387904");
        let r = bounds_of(&huge);
        assert_eq!(bound_by_name(&r, "main"), Bound::Unknown, "{:?}", r.diagnostics);
        // A non-constant (parameter) ceiling is equally wrap-capable.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 9\n    r1 = call dbl(r0)\n    ret r1\n}\n\
             func dbl(1) regs=4 {\n\
             entry:\n    r1 = const 1\n    jmp head\n\
             head:\n    r2 = clt r1, r0\n    br r2, body, exit\n\
             body:\n    r3 = const 2\n    r1 = mul r1, r3\n    jmp head\n\
             exit:\n    ret r1\n}",
        );
        assert_eq!(bound_by_name(&r, "dbl"), Bound::Unknown, "{:?}", r.diagnostics);
    }

    #[test]
    fn unreachable_self_call_keeps_intra_bound() {
        // The call graph has a self edge, but the only self-call sits in
        // an unreachable block: no live recursion, intra bound stands
        // (this used to trip a debug_assert).
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 1\n    r1 = call f(r0)\n    ret r1\n}\n\
             func f(1) regs=4 {\n\
             entry:\n    ret r0\n\
             dead:\n    r1 = call f(r0)\n    ret r1\n}",
        );
        assert_eq!(bound_by_name(&r, "f"), Bound::Const, "{:?}", r.diagnostics);
    }

    #[test]
    fn size_change_reads_operand_at_def_site() {
        // The self-call argument is defined in the entry block as
        // p + (+1) — *growing* — but the step register is redefined to -1
        // before the call. Judged at the call site this read as a
        // decrement (unsound linear depth); judged at the def site it is
        // unrecognized: B303 / Unknown.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 5\n    r1 = call f(r0)\n    ret r1\n}\n\
             func f(1) regs=8 {\n\
             entry:\n    r1 = const 1\n    r2 = add r0, r1\n    br r0, rec, base\n\
             rec:\n    r1 = const -1\n    r3 = call f(r2)\n    ret r3\n\
             base:\n    ret r0\n}",
        );
        assert_eq!(bound_by_name(&r, "f"), Bound::Unknown, "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == "B303"), "{:?}", r.diagnostics);
    }

    #[test]
    fn select_computed_limit_is_linear() {
        // The workloads' branch-free select idiom: pos += (j - pos) * hit
        // with hit a comparison result, j a penned counter. pos only ever
        // holds an old value or a value of j, so a later loop bounded by
        // pos is Linear, not Unknown.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call f(r0)\n    ret r1\n}\n\
             func f(1) regs=16 {\n\
             entry:\n    r1 = const 0\n    r2 = const 0\n    jmp h1\n\
             h1:\n    r3 = clt r1, r0\n    br r3, b1, mid\n\
             b1:\n    r4 = ceq r1, r0\n    r5 = sub r1, r2\n    r5 = mul r5, r4\n\
             \n    r2 = add r2, r5\n    r6 = const 1\n    r1 = add r1, r6\n    jmp h1\n\
             mid:\n    r7 = const 0\n    jmp h2\n\
             h2:\n    r8 = clt r7, r2\n    br r8, b2, exit\n\
             b2:\n    r9 = const 1\n    r7 = add r7, r9\n    jmp h2\n\
             exit:\n    ret r2\n}",
        );
        assert_eq!(bound_by_name(&r, "f"), Bound::Linear, "{:?}", r.diagnostics);
    }

    #[test]
    fn select_toward_accumulator_limit_is_unknown() {
        // The same select shape, but the target is itself a compounding
        // accumulator (acc += j, super-linear value): the select cannot
        // launder it into a Linear limit.
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 10\n    r1 = call f(r0)\n    ret r1\n}\n\
             func f(1) regs=16 {\n\
             entry:\n    r1 = const 0\n    r2 = const 0\n    r10 = const 0\n    jmp h1\n\
             h1:\n    r3 = clt r1, r0\n    br r3, b1, mid\n\
             b1:\n    r10 = add r10, r1\n    r4 = ceq r1, r0\n    r5 = sub r10, r2\n\
             \n    r5 = mul r5, r4\n    r2 = add r2, r5\n    r6 = const 1\n\
             \n    r1 = add r1, r6\n    jmp h1\n\
             mid:\n    r7 = const 0\n    jmp h2\n\
             h2:\n    r8 = clt r7, r2\n    br r8, b2, exit\n\
             b2:\n    r9 = const 1\n    r7 = add r7, r9\n    jmp h2\n\
             exit:\n    ret r2\n}",
        );
        assert_eq!(bound_by_name(&r, "f"), Bound::Unknown, "{:?}", r.diagnostics);
    }

    #[test]
    fn every_routine_gets_a_b301_note() {
        let r = bounds_of(
            "func main() {\nentry:\n    r0 = const 1\n    ret r0\n}\n\
             func helper() {\nentry:\n    ret\n}",
        );
        assert_eq!(r.diagnostics.iter().filter(|d| d.code == "B301").count(), 2);
        assert_eq!(r.stats.functions, 2);
        assert!(r.stats.instrs > 0);
    }

    #[test]
    fn spawn_composes_like_call() {
        let r = bounds_of(
            "func main() regs=4 {\n\
             entry:\n    r0 = const 9\n    r1 = spawn work(r0)\n    join r1\n    ret\n}\n\
             func work(1) regs=4 {\n\
             entry:\n    r1 = const 0\n    jmp head\n\
             head:\n    r2 = clt r1, r0\n    br r2, body, exit\n\
             body:\n    r3 = const 1\n    r1 = add r1, r3\n    jmp head\n\
             exit:\n    ret\n}",
        );
        assert_eq!(bound_by_name(&r, "work"), Bound::Linear);
        assert_eq!(bound_by_name(&r, "main"), Bound::Linear);
    }
}
