//! Seeded protocol fuzz: garbage, truncated and oversized request lines
//! thrown at a live daemon. The contract under test: every case gets a
//! clean `ERR` reply or a plain connection close — never a panic, never a
//! hang, never unbounded buffering — and the daemon stays fully healthy
//! afterwards. The generator is a pure function of the seed, so a failing
//! case number reproduces exactly.

use aprof_serve::{client, ServeConfig, Server, Target};
use aprof_trace::NullTool;
use aprof_wire::{WireOptions, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::time::Duration;

const SEED: u64 = 0xF022_BA5E;

fn fuzz_cases() -> u64 {
    std::env::var("APROF_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fuzz payload plus whether the case half-closes (sends EOF) or just
/// abandons the connection with the line unterminated.
fn gen_case(case: u64) -> (Vec<u8>, bool) {
    let mut rng = SEED ^ case.wrapping_mul(0x0101_0101_0101_0101);
    let shape = splitmix64(&mut rng) % 6;
    let mut payload = Vec::new();
    match shape {
        // Random binary junk, LF-terminated.
        0 => {
            let len = (splitmix64(&mut rng) % 512) as usize;
            for _ in 0..len {
                let b = (splitmix64(&mut rng) % 256) as u8;
                payload.push(if b == b'\n' { b'x' } else { b });
            }
            payload.push(b'\n');
        }
        // Printable garbage words.
        1 => {
            let words = 1 + (splitmix64(&mut rng) % 8);
            for w in 0..words {
                if w > 0 {
                    payload.push(b' ');
                }
                let len = 1 + (splitmix64(&mut rng) % 12) as usize;
                for _ in 0..len {
                    payload.push(b'!' + (splitmix64(&mut rng) % 90) as u8);
                }
            }
            payload.push(b'\n');
        }
        // A valid verb prefix with mangled arguments.
        2 => {
            payload.extend_from_slice(b"APROF/1 SUBMIT ");
            let len = (splitmix64(&mut rng) % 64) as usize;
            for _ in 0..len {
                let b = (splitmix64(&mut rng) % 256) as u8;
                payload.push(if b == b'\n' { b'=' } else { b });
            }
            payload.push(b'\n');
        }
        // A truncated request line: bytes, no LF, then EOF.
        3 => {
            payload.extend_from_slice(b"APROF/1 PI");
            let extra = (splitmix64(&mut rng) % 16) as usize;
            for _ in 0..extra {
                payload.push(b'A' + (splitmix64(&mut rng) % 26) as u8);
            }
        }
        // An oversized line, way past MAX_LINE, to probe buffering bounds.
        4 => {
            let len = 8192 + (splitmix64(&mut rng) % 8192) as usize;
            payload.resize(len, b'x');
            payload.push(b'\n');
        }
        // A valid header followed by a garbage body.
        _ => {
            payload.extend_from_slice(b"APROF/1 SUBMIT tenant=fz stream=s\n");
            let len = (splitmix64(&mut rng) % 1024) as usize;
            for _ in 0..len {
                payload.push((splitmix64(&mut rng) % 256) as u8);
            }
        }
    }
    let half_close = !splitmix64(&mut rng).is_multiple_of(4) || shape == 3;
    (payload, half_close)
}

#[test]
fn fuzzed_request_lines_never_kill_the_daemon() {
    aprof_obs::enable();
    let dir = std::env::temp_dir().join(format!("aprof-serve-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("daemon.sock");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.unix = Some(sock.clone());
    // Keep stuck fuzz connections from pinning the run.
    cfg.stream_deadline = Duration::from_secs(10);
    let target = Target::Unix(sock.clone());
    let server = Server::start(cfg).unwrap();

    for case in 0..fuzz_cases() {
        let (payload, half_close) = gen_case(case);
        let mut conn = UnixStream::connect(&sock).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        conn.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
        // The daemon may refuse (and close) before the whole payload is
        // written; a send error is a legal outcome, not a test failure.
        let _ = conn.write_all(&payload);
        if half_close {
            let _ = conn.shutdown(Shutdown::Write);
        }
        // Whatever happens, the connection must terminate promptly with
        // either an ERR line or a bare close — reading to EOF must not
        // hang (bounded by the read timeout) and must not yield an OK for
        // garbage.
        let mut reply = Vec::new();
        match conn.take(4096).read_to_end(&mut reply) {
            Ok(_) => {}
            // A hard close with our unread payload still queued surfaces
            // as ECONNRESET — that is a legal refusal, not a failure.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) => {}
            Err(e) => panic!("case {case}: reply read failed: {e}"),
        }
        let reply = String::from_utf8_lossy(&reply);
        assert!(
            reply.is_empty() || reply.starts_with("ERR "),
            "case {case}: expected ERR or close, got {reply:?}"
        );
    }

    // The daemon is intact: it answers, accepts a real stream, and the
    // fuzz tenant never got anything committed.
    client::ping(&target).unwrap();
    let wl = by_name("algo.insertion_sort").unwrap();
    let mut machine = wl.build(&WorkloadParams::new(32, 2));
    let names = machine.program().routines().clone();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 1024, ..Default::default() },
    )
    .unwrap();
    machine.run_recording(&mut NullTool, &mut writer).unwrap();
    let trace = writer.finish().unwrap().0;
    let ack = client::submit(&target, "web", "after-fuzz", &mut &trace[..]).unwrap();
    assert!(ack.events > 0);
    assert!(client::fetch_profile(&target, "fz").is_err(), "garbage must not commit");

    server.shutdown(false);
    server.wait().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
