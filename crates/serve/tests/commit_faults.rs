//! Disk-full (ENOSPC) injection at each stage of the spool commit
//! pipeline — `.part` writes, the pre-rename fsync, and the durable
//! rename itself — asserting the same contract at every stage: the client
//! gets a clean `ERR`, nothing is left in the spool, the tenant aggregate
//! never contains the stream, and (for the post-registry rename stage) the
//! in-memory commit is rolled back so a later clean daemon on the same
//! spool can accept the stream as *new*, not as a duplicate.

use aprof_faults::FaultConfig;
use aprof_serve::{client, ServeConfig, Server, Target};
use aprof_trace::NullTool;
use aprof_wire::{WireOptions, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aprof-serve-enospc-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_workload(name: &str, size: u64) -> Vec<u8> {
    let wl = by_name(name).expect("workload registered");
    let mut machine = wl.build(&WorkloadParams::new(size, 2));
    let names = machine.program().routines().clone();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 1024, ..Default::default() },
    )
    .unwrap();
    machine.run_recording(&mut NullTool, &mut writer).expect("workload runs");
    writer.finish().unwrap().0
}

fn unix_config(dir: &Path) -> (ServeConfig, Target) {
    let sock = dir.join("daemon.sock");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.unix = Some(sock.clone());
    (cfg, Target::Unix(sock))
}

/// Runs one disk-full stage: starts a daemon whose fault plan fails the
/// given commit stage on every stream, submits, and asserts the rollback
/// contract.
fn assert_stage_rolls_back(label: &str, faults: FaultConfig) {
    aprof_obs::enable();
    let dir = scratch(label);
    let (mut cfg, target) = unix_config(&dir);
    cfg.faults = Some(faults);
    let trace = record_workload("algo.insertion_sort", 36);

    {
        let server = Server::start(cfg.clone()).unwrap();
        let err = client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap_err();
        assert!(
            err.to_string().contains("disk full") || err.to_string().contains("i/o error"),
            "[{label}] expected an ENOSPC refusal, got: {err}"
        );
        // No half-committed state: no aggregate, no spool files.
        assert!(client::fetch_profile(&target, "web").is_err(), "[{label}] aggregate must be empty");
        assert!(!cfg.spool.join("web").join("s-1.wire").exists(), "[{label}] no .wire");
        assert!(!cfg.spool.join("web").join("s-1.part").exists(), "[{label}] no .part leftover");
        // The daemon survived the full disk and still answers.
        client::ping(&target).unwrap();
        server.shutdown(false);
        server.wait().unwrap();
    }

    // Restart *clean* on the same spool: the failed stream must not have
    // been latched anywhere — recovery finds nothing, and a re-submission
    // is a fresh commit, not a duplicate.
    cfg.faults = None;
    let server = Server::start(cfg.clone()).unwrap();
    assert!(server.damaged.is_empty(), "[{label}] rollback left damaged spool files");
    assert!(
        client::fetch_profile(&target, "web").is_err(),
        "[{label}] nothing must be recovered for the failed stream"
    );
    let ack = client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();
    assert!(ack.events > 0 && !ack.duplicate, "[{label}] retry must commit as a new stream");
    assert!(cfg.spool.join("web").join("s-1.wire").exists());
    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn disk_full_during_part_writes_rolls_back() {
    // Every spool write fails: the stream dies before it ever decodes.
    assert_stage_rolls_back("write", FaultConfig { io_error_per_mille: 1000, ..FaultConfig::off(3) });
}

#[test]
fn disk_full_during_fsync_rolls_back() {
    // The stream decodes and validates, then the pre-rename fsync fails.
    assert_stage_rolls_back("sync", FaultConfig { sync_error_per_mille: 1000, ..FaultConfig::off(3) });
}

#[test]
fn disk_full_during_rename_rolls_back_registry_commit() {
    aprof_obs::enable();
    // The rename stage is the interesting one: the in-memory registry
    // commit has already happened when the rename fails, so this pins the
    // evict path specifically.
    let injected_before =
        aprof_obs::snapshot().counter("faults.injected_commit_errors").unwrap_or(0);
    assert_stage_rolls_back(
        "rename",
        FaultConfig { rename_error_per_mille: 1000, ..FaultConfig::off(3) },
    );
    let injected_after =
        aprof_obs::snapshot().counter("faults.injected_commit_errors").unwrap_or(0);
    assert!(injected_after > injected_before, "injected commit errors must be counted");
}
