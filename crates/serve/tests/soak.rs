//! Bounded soak test: corpus-generated traces streamed concurrently into a
//! fault-injected daemon, with client-side connection drops and retries,
//! live endpoints polled throughout, and an in-process restart at the end.
//!
//! The zero-data-loss contract under test:
//!
//! * every *acknowledged* stream appears in its tenant's aggregate,
//! * the aggregate is byte-identical to a one-shot replay + merge of the
//!   acked streams in lexicographic stream-id order,
//! * and it stays byte-identical across a daemon restart on the same spool.
//!
//! `APROF_SOAK_CASES` scales the corpus (default 6, keeping CI bounded).

use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_corpus::{CaseSpec, GenConfig};
use aprof_faults::FaultConfig;
use aprof_serve::{client, ServeConfig, Server, Target};
use aprof_trace::NullTool;
use aprof_wire::{WireOptions, WireReader, WireWriter};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn soak_cases() -> usize {
    std::env::var("APROF_SOAK_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aprof-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one corpus case into wire bytes; `None` if the generated guest
/// does not run to completion (rare — the next seed is tried instead).
fn record_case(seed: u64, cfg: &GenConfig) -> Option<Vec<u8>> {
    let spec = CaseSpec::generate(seed, cfg);
    let mut machine = spec.build();
    let names = machine.program().routines().clone();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 1024, ..Default::default() },
    )
    .unwrap();
    machine.run_recording(&mut NullTool, &mut writer).ok()?;
    Some(writer.finish().unwrap().0)
}

fn replay(bytes: &[u8]) -> ProfileReport {
    let mut reader = WireReader::new(bytes).unwrap().strict();
    let mut profiler = TrmsProfiler::new();
    profiler.consume_stream(&mut reader).expect("valid stream");
    assert!(reader.index().is_some());
    let names = reader.routines().clone();
    profiler.into_report(&names)
}

/// Submits with retries: the daemon's fault plan panics/delays workers and
/// corrupts spool writes, and every such failure surfaces to the client as
/// an error or dropped connection — so a real client would retry, and so
/// does this one. A `duplicate` ack means a previous attempt committed
/// right before its connection died; that still counts as acked.
fn submit_with_retries(target: &Target, tenant: &str, stream: &str, trace: &[u8]) {
    for _ in 0..60 {
        match client::submit(target, tenant, stream, &mut &trace[..]) {
            Ok(_ack) => return,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("stream {tenant}/{stream} never got acknowledged in 60 attempts");
}

/// Queries retry too: the fault plan panics workers on *any* connection,
/// including profile fetches.
fn fetch_profile_retry(target: &Target, tenant: &str) -> String {
    for _ in 0..60 {
        match client::fetch_profile(target, tenant) {
            Ok(text) => return text,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("profile fetch for {tenant} kept failing");
}

fn fetch_tenants_retry(target: &Target) -> String {
    for _ in 0..60 {
        match client::fetch_tenants(target) {
            Ok(text) => return text,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("tenant listing kept failing");
}

/// A client-side fault: open a submission for an unrelated stream id, send
/// the header and half the body, then drop the connection without the
/// half-close. The daemon must abort it without acking or committing.
fn abort_mid_stream(target: &Target, tenant: &str, stream: &str, trace: &[u8]) {
    let Target::Unix(sock) = target else { unreachable!("soak uses a unix socket") };
    if let Ok(mut conn) = std::os::unix::net::UnixStream::connect(sock) {
        let _ = writeln!(conn, "APROF/1 SUBMIT tenant={tenant} stream={stream}");
        let _ = conn.write_all(&trace[..trace.len() / 2]);
        // dropped here: reset/EOF mid-body
    }
}

#[test]
fn soak_faulted_daemon_loses_no_acked_data() {
    aprof_obs::enable();
    aprof_faults::install_quiet_hook();
    let dir = scratch();
    let sock = dir.join("daemon.sock");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.unix = Some(sock.clone());
    cfg.faults = Some(FaultConfig::smoke(0x50AC)); // smoke plan: panics, delays, bad writes
    let target = Target::Unix(sock);

    // Corpus traces: alternate generator fragments across two tenants.
    let gens = [GenConfig::concurrent(), GenConfig::sequential(), GenConfig::mixed()];
    let mut traces: Vec<(String, String, Vec<u8>)> = Vec::new();
    let mut seed = 0x5eed_0001u64;
    while traces.len() < soak_cases() {
        let cfg_g = &gens[traces.len() % gens.len()];
        if let Some(bytes) = record_case(seed, cfg_g) {
            let tenant = if traces.len().is_multiple_of(2) { "tenant-a" } else { "tenant-b" };
            let stream = format!("case-{:03}", traces.len());
            traces.push((tenant.to_owned(), stream, bytes));
        }
        seed = seed.wrapping_add(1);
    }

    let server = Server::start(cfg.clone()).unwrap();

    // Concurrent submissions with injected client-side aborts, while a
    // poller keeps hitting the live endpoints mid-soak.
    std::thread::scope(|scope| {
        for (tenant, stream, bytes) in &traces {
            let target = target.clone();
            scope.spawn(move || {
                abort_mid_stream(&target, tenant, &format!("{stream}-torn"), bytes);
                submit_with_retries(&target, tenant, stream, bytes);
            });
        }
        let target = target.clone();
        scope.spawn(move || {
            for _ in 0..20 {
                if let Ok(obs) = client::fetch_obs(&target) {
                    assert!(obs.contains("\"version\": 4"));
                }
                let _ = client::fetch_tenants(&target);
                std::thread::sleep(Duration::from_millis(10));
            }
        });
    });

    // Every acked stream must be present; torn streams must not be. The
    // aggregate must equal the one-shot replay + merge oracle, per tenant,
    // in lexicographic stream-id order.
    let mut expected: Vec<(&str, String)> = Vec::new();
    for tenant in ["tenant-a", "tenant-b"] {
        let mut streams: Vec<&(String, String, Vec<u8>)> =
            traces.iter().filter(|(t, _, _)| t == tenant).collect();
        streams.sort_by(|a, b| a.1.cmp(&b.1));
        let reports: Vec<ProfileReport> = streams.iter().map(|(_, _, b)| replay(b)).collect();
        expected.push((tenant, ProfileReport::merge(&reports).to_canonical_text()));
    }
    for (tenant, text) in &expected {
        assert_eq!(
            &fetch_profile_retry(&target, tenant),
            text,
            "live aggregate for {tenant} drifted from the one-shot oracle"
        );
    }
    let tenants = fetch_tenants_retry(&target);
    assert!(!tenants.contains("-torn"), "an aborted stream leaked into the state: {tenants}");

    // Hard stop, then restart on the same spool — with faults off, as after
    // an operator intervention. The aggregates must come back byte-identical.
    server.shutdown(true);
    server.wait().unwrap();
    cfg.faults = None;
    let server = Server::start(cfg).unwrap();
    assert!(
        server.damaged.is_empty(),
        "spool damage after soak: {:?}",
        server.damaged
    );
    for (tenant, text) in &expected {
        assert_eq!(
            &client::fetch_profile(&target, tenant).unwrap(),
            text,
            "aggregate for {tenant} changed across restart"
        );
    }

    let snap = aprof_obs::snapshot();
    assert!(snap.counter("serve.streams_committed").unwrap_or(0) >= traces.len() as u64);
    assert!(snap.counter("serve.recovered_streams").unwrap_or(0) >= traces.len() as u64);

    server.shutdown(false);
    server.wait().unwrap();
}
