//! In-process integration tests for the service daemon: protocol
//! round-trips, multi-tenant determinism against the one-shot replay
//! oracle, quotas, backpressure, and restart recovery.
//!
//! Obs counters are process-global and the test harness runs tests on
//! parallel threads, so counter assertions here are monotonic (`>=`,
//! before/after deltas) rather than exact.

use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_faults::FaultConfig;
use aprof_serve::{client, RetryPolicy, ServeConfig, ServeError, Server, Target};
use aprof_trace::NullTool;
use aprof_vm::ResourceLimits;
use aprof_wire::{WireOptions, WireReader, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh scratch directory per call (unique across tests and runs).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aprof-serve-test-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one workload run into wire bytes, with small chunks so even
/// short submissions span several of them.
fn record_workload(name: &str, size: u64) -> Vec<u8> {
    let wl = by_name(name).expect("workload registered");
    let mut machine = wl.build(&WorkloadParams::new(size, 2));
    let names = machine.program().routines().clone();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 1024, ..Default::default() },
    )
    .unwrap();
    machine.run_recording(&mut NullTool, &mut writer).expect("workload runs");
    writer.finish().unwrap().0
}

/// The daemon-equivalent one-shot replay of one wire trace.
fn replay(bytes: &[u8]) -> ProfileReport {
    let mut reader = WireReader::new(bytes).unwrap().strict();
    let mut profiler = TrmsProfiler::new();
    profiler.consume_stream(&mut reader).expect("valid stream");
    assert!(reader.index().is_some());
    let names = reader.routines().clone();
    profiler.into_report(&names)
}

/// The CLI oracle: replay each trace, merge in the given (sorted) order.
fn oracle_text(traces: &[&[u8]]) -> String {
    let reports: Vec<ProfileReport> = traces.iter().map(|t| replay(t)).collect();
    ProfileReport::merge(&reports).to_canonical_text()
}

fn unix_config(dir: &Path) -> (ServeConfig, Target) {
    let sock = dir.join("daemon.sock");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.unix = Some(sock.clone());
    (cfg, Target::Unix(sock))
}

#[test]
fn unix_round_trip_profile_report_obs() {
    aprof_obs::enable();
    let dir = scratch("roundtrip");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();
    assert!(server.damaged.is_empty());

    client::ping(&target).unwrap();

    let trace = record_workload("algo.insertion_sort", 48);
    let ack = client::submit(&target, "web", "s-001", &mut &trace[..]).unwrap();
    assert!(ack.events > 0 && ack.chunks > 0 && !ack.duplicate);

    // Live endpoints while the daemon runs.
    let profile = client::fetch_profile(&target, "web").unwrap();
    assert_eq!(profile, oracle_text(&[&trace]));
    let report = client::fetch_report(&target, "web").unwrap();
    assert!(
        report.contains("<!DOCTYPE html>") || report.contains("<html"),
        "not HTML: {}",
        &report[..80.min(report.len())]
    );
    let obs = client::fetch_obs(&target).unwrap();
    assert!(obs.contains("\"version\": 4"), "obs.json should be schema v4");
    assert!(obs.contains("serve.streams_committed"));
    let tenants = client::fetch_tenants(&target).unwrap();
    assert!(tenants.contains("web streams=1"), "unexpected listing: {tenants}");

    // Idempotent duplicate.
    let dup = client::submit(&target, "web", "s-001", &mut &trace[..]).unwrap();
    assert!(dup.duplicate);
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), profile);

    // Unknown tenant is a remote error.
    assert!(client::fetch_profile(&target, "nobody").is_err());

    client::shutdown(&target, false).unwrap();
    server.wait().unwrap();
    let snap = aprof_obs::snapshot();
    assert!(snap.counter("serve.streams_committed").unwrap_or(0) >= 1);
    assert!(snap.counter("serve.drain_micros").is_some());
}

#[test]
fn http_endpoints_over_tcp() {
    aprof_obs::enable();
    let dir = scratch("http");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.tcp = Some("127.0.0.1:0".into());
    let server = Server::start(cfg).unwrap();
    let addr = server.tcp_addr().unwrap();
    let target = Target::Tcp(addr.to_string());

    let trace = record_workload("algo.insertion_sort", 40);
    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();

    let get = |path: &str| -> String {
        use std::io::Read;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        body
    };
    assert!(get("/healthz").contains("200 OK"));
    let obs = get("/obs.json");
    assert!(obs.contains("application/json") && obs.contains("\"version\": 4"));
    assert!(get("/tenants").contains("web streams=1"));
    assert!(get("/profile/web").contains("aprof-profile v1"));
    assert!(get("/report/web").contains("text/html"));
    assert!(get("/profile/nobody").contains("404"));
    assert!(get("/nonsense").contains("404"));

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn concurrent_tenants_are_byte_identical_to_one_shot_replay() {
    aprof_obs::enable();
    let dir = scratch("concurrent");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();

    // Two tenants, two distinct streams each, submitted concurrently.
    let traces: Vec<Vec<u8>> = [
        ("algo.insertion_sort", 36),
        ("algo.merge_sort", 24),
        ("producer_consumer", 20),
        ("algo.binary_search", 48),
    ]
    .iter()
    .map(|&(w, n)| record_workload(w, n))
    .collect();
    std::thread::scope(|scope| {
        for (i, trace) in traces.iter().enumerate() {
            let target = target.clone();
            scope.spawn(move || {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                let ack = client::submit(&target, tenant, &format!("s-{i:03}"), &mut &trace[..])
                    .unwrap();
                assert!(ack.events > 0);
            });
        }
    });

    // Expected: per-tenant merge of the one-shot replays in sorted
    // stream-id order (s-000 < s-002, s-001 < s-003) — the order the
    // daemon's aggregate uses regardless of arrival interleaving.
    let alpha = oracle_text(&[&traces[0], &traces[2]]);
    let beta = oracle_text(&[&traces[1], &traces[3]]);
    assert_eq!(client::fetch_profile(&target, "alpha").unwrap(), alpha);
    assert_eq!(client::fetch_profile(&target, "beta").unwrap(), beta);

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn restart_recovers_committed_streams_byte_identically() {
    aprof_obs::enable();
    let dir = scratch("recovery");
    let (cfg, target) = unix_config(&dir);

    let t1 = record_workload("algo.insertion_sort", 44);
    let t2 = record_workload("algo.merge_sort", 20);
    {
        let server = Server::start(cfg.clone()).unwrap();
        client::submit(&target, "web", "a-1", &mut &t1[..]).unwrap();
        client::submit(&target, "web", "a-2", &mut &t2[..]).unwrap();
        server.shutdown(true); // immediate stop, no graceful drain
        server.wait().unwrap();
    }
    let expected = oracle_text(&[&t1, &t2]);

    // Simulate a mid-stream kill leftover: recovery must delete it and
    // must not let it perturb the aggregate.
    let part = cfg.spool.join("web").join("killed.part");
    std::fs::write(&part, b"half a stream").unwrap();

    let server = Server::start(cfg.clone()).unwrap();
    assert!(server.damaged.is_empty());
    assert!(!part.exists(), ".part leftovers are discarded on recovery");
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), expected);

    // Re-submitting a recovered stream is still an idempotent duplicate.
    let dup = client::submit(&target, "web", "a-1", &mut &t1[..]).unwrap();
    assert!(dup.duplicate);
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), expected);

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn damaged_spool_files_are_reported_not_dropped() {
    aprof_obs::enable();
    let dir = scratch("damaged");
    let (cfg, _target) = unix_config(&dir);
    let bad = cfg.spool.join("web").join("torn.wire");
    std::fs::create_dir_all(bad.parent().unwrap()).unwrap();
    std::fs::write(&bad, b"not a wire trace at all").unwrap();

    let server = Server::start(cfg).unwrap();
    assert_eq!(server.damaged.len(), 1);
    assert_eq!(server.damaged[0].0, bad);
    assert!(bad.exists(), "damaged files stay on disk for inspection");

    server.shutdown(true);
    server.wait().unwrap();
}

#[test]
fn event_quota_refuses_oversized_streams() {
    aprof_obs::enable();
    let dir = scratch("quota");
    let (mut cfg, target) = unix_config(&dir);
    cfg.quota = ResourceLimits { max_instructions: 50, trap: true, ..ResourceLimits::default() };
    let server = Server::start(cfg.clone()).unwrap();

    let trace = record_workload("algo.insertion_sort", 48); // far over 50 events
    let before = aprof_obs::snapshot().counter("serve.quota_trips").unwrap_or(0);
    let err = client::submit(&target, "web", "big", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("quota"), "unexpected refusal: {err}");
    let after = aprof_obs::snapshot().counter("serve.quota_trips").unwrap_or(0);
    assert!(after > before, "a quota refusal must be counted");

    // Nothing was committed: no aggregate, no spool file.
    assert!(client::fetch_profile(&target, "web").is_err());
    assert!(!cfg.spool.join("web").join("big.wire").exists());
    assert!(!cfg.spool.join("web").join("big.part").exists());

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn spool_cells_quota_refuses_commit() {
    aprof_obs::enable();
    let dir = scratch("cells");
    let (mut cfg, target) = unix_config(&dir);
    cfg.quota = ResourceLimits { max_alloc_cells: 4, trap: true, ..ResourceLimits::default() };
    let server = Server::start(cfg.clone()).unwrap();

    let trace = record_workload("algo.insertion_sort", 40); // well over 32 bytes
    let err = client::submit(&target, "web", "fat", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("spool quota"), "unexpected refusal: {err}");
    assert!(!cfg.spool.join("web").join("fat.wire").exists());
    assert!(!cfg.spool.join("web").join("fat.part").exists());

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn backpressure_queues_then_refuses_busy() {
    aprof_obs::enable();
    let dir = scratch("busy");
    let (mut cfg, target) = unix_config(&dir);
    cfg.max_in_flight = 1;
    cfg.queue_timeout = Duration::from_millis(300);
    let server = Server::start(cfg).unwrap();
    let Target::Unix(sock) = &target else { unreachable!() };

    // Occupy the single slot: a submission that sends its header and then
    // stalls mid-body, holding its in-flight slot open.
    let mut stalled = std::os::unix::net::UnixStream::connect(sock).unwrap();
    writeln!(stalled, "APROF/1 SUBMIT tenant=web stream=slow").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let it get admitted

    let trace = record_workload("algo.insertion_sort", 32);
    let before = aprof_obs::snapshot().counter("serve.backpressure_stalls").unwrap_or(0);
    let err = client::submit(&target, "web", "quick", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("busy"), "expected busy refusal, got: {err}");
    let after = aprof_obs::snapshot().counter("serve.backpressure_stalls").unwrap_or(0);
    assert!(after > before, "a stalled admission must be counted");

    // Release the slot (the stalled client aborts): the never-acked stream
    // must not appear, and new submissions must be admitted again.
    drop(stalled);
    std::thread::sleep(Duration::from_millis(100));
    let ack = client::submit(&target, "web", "quick", &mut &trace[..]).unwrap();
    assert!(ack.events > 0);
    let tenants = client::fetch_tenants(&target).unwrap();
    assert!(tenants.contains("web streams=1"), "only the acked stream counts: {tenants}");

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn draining_daemon_refuses_new_streams_then_stops() {
    aprof_obs::enable();
    let dir = scratch("drain");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();

    let trace = record_workload("algo.insertion_sort", 36);
    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();
    client::shutdown(&target, false).unwrap();
    server.wait().unwrap();

    // Listeners are gone after the drain completes.
    assert!(client::ping(&target).is_err());
}

/// Counter delta helper: obs counters are process-global, so assertions
/// compare before/after snapshots instead of absolute values.
fn counter(name: &str) -> u64 {
    aprof_obs::snapshot().counter(name).unwrap_or(0)
}

/// Waits (bounded) for a counter to reach `at_least`: some counters are
/// bumped just *after* the reply the client observed (breaker settling,
/// supervisor restart accounting), so equality right after an ack would
/// race.
fn wait_counter(name: &str, at_least: u64) {
    for _ in 0..100 {
        if counter(name) >= at_least {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("counter {name} never reached {at_least} (now {})", counter(name));
}

#[test]
fn worker_panics_are_supervised_and_feed_the_breaker() {
    aprof_obs::enable();
    let dir = scratch("panic");
    let (mut cfg, target) = unix_config(&dir);
    // Every connection worker draws an injected panic; the breaker trips
    // after two tenant-attributed failures.
    cfg.faults = Some(FaultConfig { panic_per_mille: 1000, ..FaultConfig::off(7) });
    cfg.breaker.failures = 2;
    cfg.breaker.cooldown = Duration::from_secs(60);
    let server = Server::start(cfg.clone()).unwrap();

    let trace = record_workload("algo.insertion_sort", 36);
    let panics_before = counter("serve.supervisor.worker_panics");
    let trips_before = counter("serve.breaker.trips");

    // Two panicked submissions: each is caught, answered with ERR, and
    // attributed to the tenant. The daemon never exits.
    for stream in ["s-1", "s-2"] {
        let err = client::submit(&target, "web", stream, &mut &trace[..]).unwrap_err();
        assert!(
            err.to_string().contains("worker panicked"),
            "expected a supervised-panic refusal, got: {err}"
        );
    }
    assert!(counter("serve.supervisor.worker_panics") >= panics_before + 2);
    assert!(counter("serve.breaker.trips") > trips_before);

    // Third submission is refused by the tripped breaker *before* any
    // worker runs — the typed Quarantined refusal round-trips the wire.
    let err = client::submit(&target, "web", "s-3", &mut &trace[..]).unwrap_err();
    assert!(matches!(err, ServeError::Quarantined), "expected quarantine, got: {err}");

    // Nothing was ever committed or spooled.
    assert!(!cfg.spool.join("web").join("s-1.wire").exists());
    assert!(!cfg.spool.join("web").join("s-1.part").exists());

    server.shutdown(true);
    server.wait().unwrap();
}

#[test]
fn breaker_recovers_through_a_half_open_probe() {
    aprof_obs::enable();
    let dir = scratch("breaker");
    let (mut cfg, target) = unix_config(&dir);
    cfg.breaker.failures = 2;
    cfg.breaker.window = Duration::from_secs(30);
    cfg.breaker.cooldown = Duration::from_millis(50);
    let server = Server::start(cfg).unwrap();

    // Two corrupt streams (tenant-attributable wire failures) trip the
    // breaker for `web`.
    let mut bad = record_workload("algo.insertion_sort", 36);
    let mid = bad.len() / 2;
    bad[mid] ^= 0xff;
    for stream in ["b-1", "b-2"] {
        assert!(client::submit(&target, "web", stream, &mut &bad[..]).is_err());
    }
    let err = client::submit(&target, "web", "b-3", &mut &bad[..]).unwrap_err();
    assert!(matches!(err, ServeError::Quarantined), "expected quarantine, got: {err}");
    // Other tenants are unaffected by web's quarantine.
    let good = record_workload("algo.merge_sort", 20);
    client::submit(&target, "other", "ok-1", &mut &good[..]).unwrap();

    // After the cooldown one probe is admitted; its success closes the
    // breaker and the tenant serves normally again.
    std::thread::sleep(Duration::from_millis(80));
    let probes_before = counter("serve.breaker.half_open_probes");
    let recoveries_before = counter("serve.breaker.recoveries");
    let ack = client::submit(&target, "web", "g-1", &mut &good[..]).unwrap();
    assert!(ack.events > 0);
    assert!(counter("serve.breaker.half_open_probes") > probes_before);
    wait_counter("serve.breaker.recoveries", recoveries_before + 1);
    client::submit(&target, "web", "g-2", &mut &good[..]).unwrap();

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn listener_panics_restart_the_accept_loop() {
    aprof_obs::enable();
    let dir = scratch("listener");
    let (mut cfg, target) = unix_config(&dir);
    // Every accepted connection panics in the accept loop itself, before
    // a worker exists; the supervisor must keep restarting the loop.
    cfg.faults = Some(FaultConfig { accept_panic_per_mille: 1000, ..FaultConfig::off(11) });
    let server = Server::start(cfg).unwrap();

    let restarts_before = counter("serve.supervisor.listener_restarts");
    for _ in 0..3 {
        // The TCP-level connect succeeds; the daemon then drops the
        // connection un-served, so the request itself errors.
        assert!(client::ping(&target).is_err());
    }
    // Each accept-loop panic must be a counted supervisor restart (the
    // count trails the client-visible drop by the catch/backoff window).
    wait_counter("serve.supervisor.listener_restarts", restarts_before + 3);

    // The daemon is still alive and stoppable through its handle.
    server.shutdown(true);
    server.wait().unwrap();
}

#[test]
fn conn_pressure_sheds_with_retry_after() {
    aprof_obs::enable();
    let dir = scratch("shedconn");
    let (mut cfg, target) = unix_config(&dir);
    cfg.shed.max_active_conns = 0; // the submitting connection itself is over the ceiling
    cfg.shed.retry_after = Duration::from_millis(350);
    let server = Server::start(cfg).unwrap();

    let trace = record_workload("algo.insertion_sort", 32);
    let shed_before = counter("serve.shed.conn_pressure");
    let err = client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap_err();
    match err {
        ServeError::Busy { retry_after } => {
            assert_eq!(retry_after, Duration::from_millis(350), "retry-after hint round-trips");
        }
        other => panic!("expected a busy shed, got: {other}"),
    }
    assert!(counter("serve.shed.conn_pressure") > shed_before);
    // Queries are never shed — only ingest work is refused.
    client::ping(&target).unwrap();

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn spool_and_tenant_pressure_shed_deterministically() {
    aprof_obs::enable();
    let dir = scratch("shedspool");
    let (mut cfg, target) = unix_config(&dir);
    let trace = record_workload("algo.insertion_sort", 32);
    let events = {
        let mut reader = WireReader::new(&trace[..]).unwrap().strict();
        let mut profiler = TrmsProfiler::new();
        profiler.consume_stream(&mut reader).unwrap()
    };
    // Spool capacity admits exactly one copy of the trace; tenant pressure
    // fires once a tenant holds `events` committed events (10% of a budget
    // of 10x). Either threshold alone would shed the second stream.
    cfg.shed.spool_capacity_cells = 1; // any committed stream saturates the spool
    cfg.quota = ResourceLimits {
        max_instructions: events * 10,
        trap: true,
        ..ResourceLimits::default()
    };
    cfg.shed.tenant_pressure_pct = 10;
    let server = Server::start(cfg).unwrap();

    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();
    let spool_before = counter("serve.shed.spool_pressure");
    let err = client::submit(&target, "web", "s-2", &mut &trace[..]).unwrap_err();
    assert!(matches!(err, ServeError::Busy { .. }), "expected busy shed, got: {err}");
    assert!(counter("serve.shed.spool_pressure") > spool_before, "spool headroom check fires first");

    server.shutdown(false);
    server.wait().unwrap();

    // Same scenario with unlimited spool: now the *tenant-pressure* check
    // is what sheds the second stream (s-1 committed `events` events, 10%
    // of the 10x budget).
    let dir = scratch("shedtenant");
    let (mut cfg, target) = unix_config(&dir);
    cfg.quota = ResourceLimits {
        max_instructions: events * 10,
        trap: true,
        ..ResourceLimits::default()
    };
    cfg.shed.tenant_pressure_pct = 10;
    let server = Server::start(cfg).unwrap();
    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();
    let tenant_before = counter("serve.shed.tenant_pressure");
    let err = client::submit(&target, "web", "s-2", &mut &trace[..]).unwrap_err();
    assert!(matches!(err, ServeError::Busy { .. }), "expected busy shed, got: {err}");
    assert!(counter("serve.shed.tenant_pressure") > tenant_before);
    // A different tenant is under no pressure.
    client::submit(&target, "other", "s-1", &mut &trace[..]).unwrap();

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn submit_retrying_rides_out_backpressure() {
    aprof_obs::enable();
    let dir = scratch("retry");
    let (mut cfg, target) = unix_config(&dir);
    cfg.max_in_flight = 1;
    cfg.queue_timeout = Duration::from_millis(100);
    cfg.shed.retry_after = Duration::from_millis(50);
    let server = Server::start(cfg).unwrap();
    let Target::Unix(sock) = &target else { unreachable!() };

    // Hold the single in-flight slot open with a stalled submission.
    let mut stalled = std::os::unix::net::UnixStream::connect(sock).unwrap();
    writeln!(stalled, "APROF/1 SUBMIT tenant=web stream=slow").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let trace = record_workload("algo.insertion_sort", 32);
    let policy = RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(200),
        seed: 42,
    };
    std::thread::scope(|scope| {
        let handle =
            scope.spawn(|| client::submit_retrying(&target, "web", "quick", &policy, || Ok(&trace[..])));
        // Release the slot while the retrying client is backing off.
        std::thread::sleep(Duration::from_millis(300));
        drop(stalled);
        let ack = handle.join().unwrap().expect("retries outlast the pressure");
        assert!(ack.events > 0);
    });

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn slow_loris_is_evicted_at_the_stream_deadline() {
    aprof_obs::enable();
    let dir = scratch("loris");
    let (mut cfg, target) = unix_config(&dir);
    cfg.stream_deadline = Duration::from_millis(250);
    let server = Server::start(cfg.clone()).unwrap();
    let Target::Unix(sock) = &target else { unreachable!() };

    let trace = record_workload("algo.insertion_sort", 40);
    let evictions_before = counter("serve.shed.slow_evictions");

    // Dribble the stream one byte at a time: each byte resets the per-read
    // socket timeout, so only the overall deadline can end this.
    let mut conn = std::os::unix::net::UnixStream::connect(sock).unwrap();
    writeln!(conn, "APROF/1 SUBMIT tenant=web stream=drip").unwrap();
    conn.flush().unwrap();
    for byte in trace.iter().take(12) {
        if conn.write_all(std::slice::from_ref(byte)).is_err() {
            break; // the daemon already evicted us
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let mut reply = String::new();
    use std::io::Read as _;
    let _ = conn.read_to_string(&mut reply);
    assert!(
        reply.contains("deadline exceeded"),
        "expected a deadline eviction reply, got: {reply:?}"
    );
    assert!(counter("serve.shed.slow_evictions") > evictions_before);
    // The evicted stream left nothing behind.
    assert!(!cfg.spool.join("web").join("drip.part").exists());
    assert!(!cfg.spool.join("web").join("drip.wire").exists());
    // The daemon is healthy and the tenant can submit properly afterwards.
    let ack = client::submit(&target, "web", "ok", &mut &trace[..]).unwrap();
    assert!(ack.events > 0);

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn corrupt_submission_is_refused_and_not_spooled() {
    aprof_obs::enable();
    let dir = scratch("corrupt");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg.clone()).unwrap();

    // Flip a payload byte: strict decode must refuse, nothing committed.
    let mut trace = record_workload("algo.insertion_sort", 40);
    let mid = trace.len() / 2;
    trace[mid] ^= 0xff;
    assert!(
        client::submit(&target, "web", "bad", &mut &trace[..]).is_err(),
        "corrupt stream must be refused"
    );
    assert!(client::fetch_profile(&target, "web").is_err());
    assert!(!cfg.spool.join("web").join("bad.wire").exists());

    // A truncated stream (no trailing index) is refused too.
    let good = record_workload("algo.insertion_sort", 40);
    assert!(
        client::submit(&target, "web", "cut", &mut &good[..good.len() / 2]).is_err(),
        "truncated stream must be refused"
    );
    assert!(!cfg.spool.join("web").join("cut.wire").exists());

    server.shutdown(false);
    server.wait().unwrap();
}
