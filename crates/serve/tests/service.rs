//! In-process integration tests for the service daemon: protocol
//! round-trips, multi-tenant determinism against the one-shot replay
//! oracle, quotas, backpressure, and restart recovery.
//!
//! Obs counters are process-global and the test harness runs tests on
//! parallel threads, so counter assertions here are monotonic (`>=`,
//! before/after deltas) rather than exact.

use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_serve::{client, ServeConfig, Server, Target};
use aprof_trace::NullTool;
use aprof_vm::ResourceLimits;
use aprof_wire::{WireOptions, WireReader, WireWriter};
use aprof_workloads::{by_name, WorkloadParams};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh scratch directory per call (unique across tests and runs).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aprof-serve-test-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one workload run into wire bytes, with small chunks so even
/// short submissions span several of them.
fn record_workload(name: &str, size: u64) -> Vec<u8> {
    let wl = by_name(name).expect("workload registered");
    let mut machine = wl.build(&WorkloadParams::new(size, 2));
    let names = machine.program().routines().clone();
    let mut writer = WireWriter::create(
        Vec::new(),
        &names,
        WireOptions { chunk_bytes: 1024, ..Default::default() },
    )
    .unwrap();
    machine.run_recording(&mut NullTool, &mut writer).expect("workload runs");
    writer.finish().unwrap().0
}

/// The daemon-equivalent one-shot replay of one wire trace.
fn replay(bytes: &[u8]) -> ProfileReport {
    let mut reader = WireReader::new(bytes).unwrap().strict();
    let mut profiler = TrmsProfiler::new();
    profiler.consume_stream(&mut reader).expect("valid stream");
    assert!(reader.index().is_some());
    let names = reader.routines().clone();
    profiler.into_report(&names)
}

/// The CLI oracle: replay each trace, merge in the given (sorted) order.
fn oracle_text(traces: &[&[u8]]) -> String {
    let reports: Vec<ProfileReport> = traces.iter().map(|t| replay(t)).collect();
    ProfileReport::merge(&reports).to_canonical_text()
}

fn unix_config(dir: &Path) -> (ServeConfig, Target) {
    let sock = dir.join("daemon.sock");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.unix = Some(sock.clone());
    (cfg, Target::Unix(sock))
}

#[test]
fn unix_round_trip_profile_report_obs() {
    aprof_obs::enable();
    let dir = scratch("roundtrip");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();
    assert!(server.damaged.is_empty());

    client::ping(&target).unwrap();

    let trace = record_workload("algo.insertion_sort", 48);
    let ack = client::submit(&target, "web", "s-001", &mut &trace[..]).unwrap();
    assert!(ack.events > 0 && ack.chunks > 0 && !ack.duplicate);

    // Live endpoints while the daemon runs.
    let profile = client::fetch_profile(&target, "web").unwrap();
    assert_eq!(profile, oracle_text(&[&trace]));
    let report = client::fetch_report(&target, "web").unwrap();
    assert!(
        report.contains("<!DOCTYPE html>") || report.contains("<html"),
        "not HTML: {}",
        &report[..80.min(report.len())]
    );
    let obs = client::fetch_obs(&target).unwrap();
    assert!(obs.contains("\"version\": 3"), "obs.json should be schema v3");
    assert!(obs.contains("serve.streams_committed"));
    let tenants = client::fetch_tenants(&target).unwrap();
    assert!(tenants.contains("web streams=1"), "unexpected listing: {tenants}");

    // Idempotent duplicate.
    let dup = client::submit(&target, "web", "s-001", &mut &trace[..]).unwrap();
    assert!(dup.duplicate);
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), profile);

    // Unknown tenant is a remote error.
    assert!(client::fetch_profile(&target, "nobody").is_err());

    client::shutdown(&target, false).unwrap();
    server.wait().unwrap();
    let snap = aprof_obs::snapshot();
    assert!(snap.counter("serve.streams_committed").unwrap_or(0) >= 1);
    assert!(snap.counter("serve.drain_micros").is_some());
}

#[test]
fn http_endpoints_over_tcp() {
    aprof_obs::enable();
    let dir = scratch("http");
    let mut cfg = ServeConfig::new(dir.join("spool"));
    cfg.tcp = Some("127.0.0.1:0".into());
    let server = Server::start(cfg).unwrap();
    let addr = server.tcp_addr().unwrap();
    let target = Target::Tcp(addr.to_string());

    let trace = record_workload("algo.insertion_sort", 40);
    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();

    let get = |path: &str| -> String {
        use std::io::Read;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        body
    };
    assert!(get("/healthz").contains("200 OK"));
    let obs = get("/obs.json");
    assert!(obs.contains("application/json") && obs.contains("\"version\": 3"));
    assert!(get("/tenants").contains("web streams=1"));
    assert!(get("/profile/web").contains("aprof-profile v1"));
    assert!(get("/report/web").contains("text/html"));
    assert!(get("/profile/nobody").contains("404"));
    assert!(get("/nonsense").contains("404"));

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn concurrent_tenants_are_byte_identical_to_one_shot_replay() {
    aprof_obs::enable();
    let dir = scratch("concurrent");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();

    // Two tenants, two distinct streams each, submitted concurrently.
    let traces: Vec<Vec<u8>> = [
        ("algo.insertion_sort", 36),
        ("algo.merge_sort", 24),
        ("producer_consumer", 20),
        ("algo.binary_search", 48),
    ]
    .iter()
    .map(|&(w, n)| record_workload(w, n))
    .collect();
    std::thread::scope(|scope| {
        for (i, trace) in traces.iter().enumerate() {
            let target = target.clone();
            scope.spawn(move || {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                let ack = client::submit(&target, tenant, &format!("s-{i:03}"), &mut &trace[..])
                    .unwrap();
                assert!(ack.events > 0);
            });
        }
    });

    // Expected: per-tenant merge of the one-shot replays in sorted
    // stream-id order (s-000 < s-002, s-001 < s-003) — the order the
    // daemon's aggregate uses regardless of arrival interleaving.
    let alpha = oracle_text(&[&traces[0], &traces[2]]);
    let beta = oracle_text(&[&traces[1], &traces[3]]);
    assert_eq!(client::fetch_profile(&target, "alpha").unwrap(), alpha);
    assert_eq!(client::fetch_profile(&target, "beta").unwrap(), beta);

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn restart_recovers_committed_streams_byte_identically() {
    aprof_obs::enable();
    let dir = scratch("recovery");
    let (cfg, target) = unix_config(&dir);

    let t1 = record_workload("algo.insertion_sort", 44);
    let t2 = record_workload("algo.merge_sort", 20);
    {
        let server = Server::start(cfg.clone()).unwrap();
        client::submit(&target, "web", "a-1", &mut &t1[..]).unwrap();
        client::submit(&target, "web", "a-2", &mut &t2[..]).unwrap();
        server.shutdown(true); // immediate stop, no graceful drain
        server.wait().unwrap();
    }
    let expected = oracle_text(&[&t1, &t2]);

    // Simulate a mid-stream kill leftover: recovery must delete it and
    // must not let it perturb the aggregate.
    let part = cfg.spool.join("web").join("killed.part");
    std::fs::write(&part, b"half a stream").unwrap();

    let server = Server::start(cfg.clone()).unwrap();
    assert!(server.damaged.is_empty());
    assert!(!part.exists(), ".part leftovers are discarded on recovery");
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), expected);

    // Re-submitting a recovered stream is still an idempotent duplicate.
    let dup = client::submit(&target, "web", "a-1", &mut &t1[..]).unwrap();
    assert!(dup.duplicate);
    assert_eq!(client::fetch_profile(&target, "web").unwrap(), expected);

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn damaged_spool_files_are_reported_not_dropped() {
    aprof_obs::enable();
    let dir = scratch("damaged");
    let (cfg, _target) = unix_config(&dir);
    let bad = cfg.spool.join("web").join("torn.wire");
    std::fs::create_dir_all(bad.parent().unwrap()).unwrap();
    std::fs::write(&bad, b"not a wire trace at all").unwrap();

    let server = Server::start(cfg).unwrap();
    assert_eq!(server.damaged.len(), 1);
    assert_eq!(server.damaged[0].0, bad);
    assert!(bad.exists(), "damaged files stay on disk for inspection");

    server.shutdown(true);
    server.wait().unwrap();
}

#[test]
fn event_quota_refuses_oversized_streams() {
    aprof_obs::enable();
    let dir = scratch("quota");
    let (mut cfg, target) = unix_config(&dir);
    cfg.quota = ResourceLimits { max_instructions: 50, trap: true, ..ResourceLimits::default() };
    let server = Server::start(cfg.clone()).unwrap();

    let trace = record_workload("algo.insertion_sort", 48); // far over 50 events
    let before = aprof_obs::snapshot().counter("serve.quota_trips").unwrap_or(0);
    let err = client::submit(&target, "web", "big", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("quota"), "unexpected refusal: {err}");
    let after = aprof_obs::snapshot().counter("serve.quota_trips").unwrap_or(0);
    assert!(after > before, "a quota refusal must be counted");

    // Nothing was committed: no aggregate, no spool file.
    assert!(client::fetch_profile(&target, "web").is_err());
    assert!(!cfg.spool.join("web").join("big.wire").exists());
    assert!(!cfg.spool.join("web").join("big.part").exists());

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn spool_cells_quota_refuses_commit() {
    aprof_obs::enable();
    let dir = scratch("cells");
    let (mut cfg, target) = unix_config(&dir);
    cfg.quota = ResourceLimits { max_alloc_cells: 4, trap: true, ..ResourceLimits::default() };
    let server = Server::start(cfg.clone()).unwrap();

    let trace = record_workload("algo.insertion_sort", 40); // well over 32 bytes
    let err = client::submit(&target, "web", "fat", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("spool quota"), "unexpected refusal: {err}");
    assert!(!cfg.spool.join("web").join("fat.wire").exists());
    assert!(!cfg.spool.join("web").join("fat.part").exists());

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn backpressure_queues_then_refuses_busy() {
    aprof_obs::enable();
    let dir = scratch("busy");
    let (mut cfg, target) = unix_config(&dir);
    cfg.max_in_flight = 1;
    cfg.queue_timeout = Duration::from_millis(300);
    let server = Server::start(cfg).unwrap();
    let Target::Unix(sock) = &target else { unreachable!() };

    // Occupy the single slot: a submission that sends its header and then
    // stalls mid-body, holding its in-flight slot open.
    let mut stalled = std::os::unix::net::UnixStream::connect(sock).unwrap();
    writeln!(stalled, "APROF/1 SUBMIT tenant=web stream=slow").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let it get admitted

    let trace = record_workload("algo.insertion_sort", 32);
    let before = aprof_obs::snapshot().counter("serve.backpressure_stalls").unwrap_or(0);
    let err = client::submit(&target, "web", "quick", &mut &trace[..]).unwrap_err();
    assert!(err.to_string().contains("busy"), "expected busy refusal, got: {err}");
    let after = aprof_obs::snapshot().counter("serve.backpressure_stalls").unwrap_or(0);
    assert!(after > before, "a stalled admission must be counted");

    // Release the slot (the stalled client aborts): the never-acked stream
    // must not appear, and new submissions must be admitted again.
    drop(stalled);
    std::thread::sleep(Duration::from_millis(100));
    let ack = client::submit(&target, "web", "quick", &mut &trace[..]).unwrap();
    assert!(ack.events > 0);
    let tenants = client::fetch_tenants(&target).unwrap();
    assert!(tenants.contains("web streams=1"), "only the acked stream counts: {tenants}");

    server.shutdown(false);
    server.wait().unwrap();
}

#[test]
fn draining_daemon_refuses_new_streams_then_stops() {
    aprof_obs::enable();
    let dir = scratch("drain");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg).unwrap();

    let trace = record_workload("algo.insertion_sort", 36);
    client::submit(&target, "web", "s-1", &mut &trace[..]).unwrap();
    client::shutdown(&target, false).unwrap();
    server.wait().unwrap();

    // Listeners are gone after the drain completes.
    assert!(client::ping(&target).is_err());
}

#[test]
fn corrupt_submission_is_refused_and_not_spooled() {
    aprof_obs::enable();
    let dir = scratch("corrupt");
    let (cfg, target) = unix_config(&dir);
    let server = Server::start(cfg.clone()).unwrap();

    // Flip a payload byte: strict decode must refuse, nothing committed.
    let mut trace = record_workload("algo.insertion_sort", 40);
    let mid = trace.len() / 2;
    trace[mid] ^= 0xff;
    assert!(
        client::submit(&target, "web", "bad", &mut &trace[..]).is_err(),
        "corrupt stream must be refused"
    );
    assert!(client::fetch_profile(&target, "web").is_err());
    assert!(!cfg.spool.join("web").join("bad.wire").exists());

    // A truncated stream (no trailing index) is refused too.
    let good = record_workload("algo.insertion_sort", 40);
    assert!(
        client::submit(&target, "web", "cut", &mut &good[..good.len() / 2]).is_err(),
        "truncated stream must be refused"
    );
    assert!(!cfg.spool.join("web").join("cut.wire").exists());

    server.shutdown(false);
    server.wait().unwrap();
}
