//! Supervision primitives: restart backoff for listener loops and the
//! per-tenant circuit breaker.
//!
//! The daemon's supervision tree is two levels deep. Each *listener* loop
//! runs under a supervisor that catches panics and restarts the loop after
//! jittered exponential backoff ([`Backoff`]); each *connection worker*
//! catches panics around the submission pipeline, attributes the failure to
//! the submitting tenant, and feeds the per-tenant [`BreakerBank`]. A
//! tenant that keeps poisoning workers trips its breaker open and is
//! quarantined (`ERR quarantined`) until a half-open probe succeeds —
//! one bad tenant cannot crash-loop the daemon or starve its neighbours.

use crate::ServeError;
use aprof_faults::jittered_backoff;
use aprof_obs::counters;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-tenant circuit-breaker policy: [`BreakerConfig::failures`] failures
/// within [`BreakerConfig::window`] trip the breaker open; after
/// [`BreakerConfig::cooldown`] one probe submission is admitted half-open,
/// and its outcome decides between closing the breaker and re-opening it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Failures within the sliding window that trip the breaker.
    pub failures: u32,
    /// Length of the sliding failure window.
    pub window: Duration,
    /// How long a tripped tenant stays quarantined before a half-open
    /// probe is allowed through.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failures: 5,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(3),
        }
    }
}

/// How a supervised submission ended, from the breaker's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// The stream committed (or resolved as an idempotent duplicate).
    Success,
    /// A tenant-attributable failure: worker panic, corrupt/truncated
    /// wire bytes, or a blown stream deadline.
    Failure,
    /// Refused for reasons that say nothing about the tenant's traces
    /// (backpressure, quotas, daemon-side I/O): neither evidence of
    /// health nor of poison.
    Indeterminate,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { since: Instant },
    /// One probe is in flight; further submissions stay rejected until it
    /// settles.
    HalfOpen,
}

#[derive(Debug)]
struct TenantBreaker {
    state: State,
    /// Failure timestamps inside the sliding window (pruned on record).
    failures: Vec<Instant>,
}

impl Default for TenantBreaker {
    fn default() -> Self {
        TenantBreaker { state: State::Closed, failures: Vec::new() }
    }
}

/// All tenants' breakers behind one lock. Queries are cheap (a map lookup)
/// and only submissions consult it — the read endpoints keep answering for
/// quarantined tenants.
pub(crate) struct BreakerBank {
    cfg: BreakerConfig,
    inner: Mutex<BTreeMap<String, TenantBreaker>>,
}

impl BreakerBank {
    pub(crate) fn new(cfg: BreakerConfig) -> BreakerBank {
        BreakerBank { cfg, inner: Mutex::new(BTreeMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TenantBreaker>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gate for one submission. `Ok(())` admits (possibly as the half-open
    /// probe); `Err(Quarantined)` refuses. Every admitted submission MUST
    /// later be settled via [`BreakerBank::settle`], or a half-open probe
    /// would wedge its tenant.
    pub(crate) fn admit(&self, tenant: &str) -> Result<(), ServeError> {
        let mut inner = self.lock();
        let b = inner.entry(tenant.to_owned()).or_default();
        match b.state {
            State::Closed => Ok(()),
            State::Open { since } if since.elapsed() >= self.cfg.cooldown => {
                b.state = State::HalfOpen;
                counters::SERVE_BREAKER_PROBES.incr();
                Ok(())
            }
            State::Open { .. } | State::HalfOpen => {
                counters::SERVE_BREAKER_REJECTIONS.incr();
                Err(ServeError::Quarantined)
            }
        }
    }

    /// Settles an admitted submission. Success closes a half-open breaker
    /// ([`counters::SERVE_BREAKER_RECOVERIES`]); failure pushes the sliding
    /// window (tripping the breaker at the threshold) or re-opens a
    /// half-open one; an indeterminate outcome returns a consumed probe
    /// without penalty so the next submission may probe again.
    pub(crate) fn settle(&self, tenant: &str, outcome: Outcome) {
        let now = Instant::now();
        let mut inner = self.lock();
        let b = inner.entry(tenant.to_owned()).or_default();
        match (outcome, b.state) {
            (Outcome::Success, State::HalfOpen) => {
                b.state = State::Closed;
                b.failures.clear();
                counters::SERVE_BREAKER_RECOVERIES.incr();
            }
            (Outcome::Success, _) => {}
            (Outcome::Failure, State::HalfOpen) => {
                // The probe failed: straight back to quarantine for a full
                // cooldown. Counted as a fresh trip.
                b.state = State::Open { since: now };
                counters::SERVE_BREAKER_TRIPS.incr();
            }
            (Outcome::Failure, State::Closed) => {
                b.failures.push(now);
                let window = self.cfg.window;
                b.failures.retain(|t| now.duration_since(*t) <= window);
                if b.failures.len() >= self.cfg.failures.max(1) as usize {
                    b.state = State::Open { since: now };
                    b.failures.clear();
                    counters::SERVE_BREAKER_TRIPS.incr();
                }
            }
            (Outcome::Failure, State::Open { .. }) => {}
            (Outcome::Indeterminate, State::HalfOpen) => {
                // Give the probe back: re-open with an elapsed cooldown so
                // the very next submission may probe again.
                let since = now.checked_sub(self.cfg.cooldown).unwrap_or(now);
                b.state = State::Open { since };
            }
            (Outcome::Indeterminate, _) => {}
        }
    }
}

/// Deterministic jittered exponential backoff schedule for supervisor
/// restarts: wraps [`jittered_backoff`] with an attempt counter that
/// resets after a period of health.
pub(crate) struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    pub(crate) fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff { base, cap, seed, attempt: 0 }
    }

    /// The delay to sleep before the next restart; successive calls double
    /// the window up to the cap.
    pub(crate) fn next_delay(&mut self) -> Duration {
        let d = jittered_backoff(self.base, self.cap, self.seed, self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failures: 3,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(20),
        }
    }

    #[test]
    fn trips_after_threshold_and_quarantines() {
        let bank = BreakerBank::new(cfg());
        for _ in 0..3 {
            bank.admit("t").unwrap();
            bank.settle("t", Outcome::Failure);
        }
        assert!(matches!(bank.admit("t"), Err(ServeError::Quarantined)));
        // Other tenants are unaffected.
        bank.admit("other").unwrap();
    }

    #[test]
    fn half_open_probe_recovers() {
        let bank = BreakerBank::new(cfg());
        for _ in 0..3 {
            bank.admit("t").unwrap();
            bank.settle("t", Outcome::Failure);
        }
        assert!(bank.admit("t").is_err());
        std::thread::sleep(Duration::from_millis(25));
        // First post-cooldown submission probes; a concurrent one is still
        // rejected until the probe settles.
        bank.admit("t").unwrap();
        assert!(bank.admit("t").is_err());
        bank.settle("t", Outcome::Success);
        bank.admit("t").unwrap();
        bank.settle("t", Outcome::Success);
    }

    #[test]
    fn failed_probe_reopens_and_indeterminate_returns_it() {
        let bank = BreakerBank::new(cfg());
        for _ in 0..3 {
            bank.admit("t").unwrap();
            bank.settle("t", Outcome::Failure);
        }
        std::thread::sleep(Duration::from_millis(25));
        bank.admit("t").unwrap();
        bank.settle("t", Outcome::Failure);
        // Re-opened: rejected again without waiting out a new cooldown.
        assert!(bank.admit("t").is_err());
        std::thread::sleep(Duration::from_millis(25));
        bank.admit("t").unwrap();
        // An indeterminate probe (e.g. shed busy) is returned without
        // penalty: the next submission may probe immediately.
        bank.settle("t", Outcome::Indeterminate);
        bank.admit("t").unwrap();
        bank.settle("t", Outcome::Success);
    }

    #[test]
    fn window_prunes_old_failures() {
        let bank = BreakerBank::new(BreakerConfig {
            failures: 3,
            window: Duration::from_millis(10),
            cooldown: Duration::from_secs(10),
        });
        for _ in 0..2 {
            bank.admit("t").unwrap();
            bank.settle("t", Outcome::Failure);
        }
        std::thread::sleep(Duration::from_millis(15));
        // The two old failures fell out of the window: one more does not
        // trip.
        bank.admit("t").unwrap();
        bank.settle("t", Outcome::Failure);
        bank.admit("t").unwrap();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(64), 7);
        let mut last = Duration::ZERO;
        for _ in 0..10 {
            let d = b.next_delay();
            assert!(d <= Duration::from_millis(64));
            assert!(d >= Duration::from_micros(400), "{d:?}");
            last = d;
        }
        assert!(last >= Duration::from_millis(32), "{last:?}");
    }
}
