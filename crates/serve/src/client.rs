//! Client side of the `APROF/1` protocol: submit traces, fetch profiles,
//! reports, obs snapshots and tenant listings, ping, shut down.

use crate::protocol::{read_line, Conn};
use crate::ServeError;
use aprof_faults::jittered_backoff;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::str::FromStr;
use std::thread;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A unix socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7071`.
    Tcp(String),
}

impl FromStr for Target {
    type Err = ServeError;

    /// Parses `unix:<path>` or `tcp:<host>:<port>` (a bare `host:port`
    /// also counts as TCP).
    fn from_str(s: &str) -> Result<Self, ServeError> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(Target::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Target::Tcp(addr.to_owned()))
        } else if s.contains(':') {
            Ok(Target::Tcp(s.to_owned()))
        } else {
            Err(ServeError::Protocol(format!(
                "cannot parse target {s:?}: expected unix:<path> or tcp:<host>:<port>"
            )))
        }
    }
}

impl Target {
    fn connect(&self) -> Result<Conn, ServeError> {
        let conn = match self {
            Target::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
            Target::Tcp(addr) => Conn::Tcp(TcpStream::connect(addr.as_str())?),
        };
        conn.set_read_timeout(Duration::from_secs(60))?;
        conn.set_write_timeout(Duration::from_secs(30))?;
        Ok(conn)
    }
}

/// The daemon's acknowledgement of a committed submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Events aggregated from the stream (0 for duplicates).
    pub events: u64,
    /// Chunks decoded (0 for duplicates).
    pub chunks: u64,
    /// The stream id was already committed; nothing was re-aggregated.
    pub duplicate: bool,
}

fn parse_reply_line(line: &str) -> Result<Vec<&str>, ServeError> {
    if let Some(rest) = line.strip_prefix("OK") {
        Ok(rest.split_whitespace().collect())
    } else if let Some(reason) = line.strip_prefix("ERR ") {
        Err(parse_err_reason(reason))
    } else {
        Err(ServeError::Protocol(format!("unparseable reply {line:?}")))
    }
}

/// Recovers typed refusals from the daemon's `ERR <reason>` wire shapes so
/// callers can tell retryable pressure (`busy retry-after <ms>`) from fatal
/// refusals (everything else). Unrecognized reasons stay
/// [`ServeError::Remote`].
fn parse_err_reason(reason: &str) -> ServeError {
    if let Some(rest) = reason.strip_prefix("busy retry-after ") {
        if let Ok(ms) = rest.trim().parse::<u64>() {
            return ServeError::Busy { retry_after: Duration::from_millis(ms) };
        }
    }
    if reason.starts_with("quarantined") {
        return ServeError::Quarantined;
    }
    ServeError::Remote(reason.to_owned())
}

fn field(words: &[&str], key: &str) -> Option<u64> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
        .and_then(|v| v.parse().ok())
}

/// Submits one wire trace under `tenant`/`stream`, streaming `trace` to
/// the daemon, and returns the daemon's ack.
///
/// # Errors
///
/// I/O failures, daemon refusals (`ERR` replies surface as
/// [`ServeError::Remote`]) and malformed replies.
pub fn submit(
    target: &Target,
    tenant: &str,
    stream: &str,
    trace: &mut dyn Read,
) -> Result<Ack, ServeError> {
    let mut conn = target.connect()?;
    writeln!(conn, "APROF/1 SUBMIT tenant={tenant} stream={stream}")?;
    io::copy(trace, &mut conn)?;
    conn.flush()?;
    conn.shutdown_write()?;
    let line = read_line(&mut conn)?;
    let words = parse_reply_line(&line)?;
    Ok(Ack {
        events: field(&words, "events").unwrap_or(0),
        chunks: field(&words, "chunks").unwrap_or(0),
        duplicate: field(&words, "duplicate").unwrap_or(0) == 1,
    })
}

/// Client-side retry policy for [`submit_retrying`]: bounded, seeded
/// exponential backoff with jitter. The daemon's `retry-after` hint is a
/// floor on each wait, the jittered schedule decorrelates competing
/// clients, and the seed makes any given client's schedule replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (including the first); at least 1.
    pub attempts: u32,
    /// Base backoff window before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff wait.
    pub cap: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x9E37_79B9,
        }
    }
}

/// Submits with retries: `ERR busy retry-after <ms>` refusals and transport
/// I/O errors are retried (re-submission is idempotent — a stream that
/// actually committed resolves as a duplicate ack); every other refusal is
/// fatal immediately. `open` re-opens the trace bytes for each attempt.
///
/// # Errors
///
/// The last [`ServeError::Busy`]/[`ServeError::Io`] once attempts are
/// exhausted, or the first fatal error.
pub fn submit_retrying<R, F>(
    target: &Target,
    tenant: &str,
    stream: &str,
    policy: &RetryPolicy,
    mut open: F,
) -> Result<Ack, ServeError>
where
    R: Read,
    F: FnMut() -> Result<R, ServeError>,
{
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        let mut trace = open()?;
        match submit(target, tenant, stream, &mut trace) {
            Ok(ack) => return Ok(ack),
            Err(e @ (ServeError::Busy { .. } | ServeError::Io(_))) => {
                let jitter = jittered_backoff(policy.base, policy.cap, policy.seed, attempt);
                let wait = match &e {
                    ServeError::Busy { retry_after } => jitter.max(*retry_after),
                    _ => jitter,
                };
                last = Some(e);
                if attempt + 1 < attempts {
                    thread::sleep(wait);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| ServeError::Protocol("no submission attempts made".into())))
}

fn fetch_body(target: &Target, request: &str) -> Result<String, ServeError> {
    let mut conn = target.connect()?;
    writeln!(conn, "{request}")?;
    conn.flush()?;
    let line = read_line(&mut conn)?;
    let words = parse_reply_line(&line)?;
    let len = words
        .first()
        .and_then(|w| w.parse::<usize>().ok())
        .ok_or_else(|| ServeError::Protocol(format!("expected OK <len>, got OK {words:?}")))?;
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| ServeError::Protocol("body is not UTF-8".into()))
}

/// Fetches a tenant's aggregate as canonical profile text.
///
/// # Errors
///
/// [`ServeError::Remote`] for unknown tenants, plus transport failures.
pub fn fetch_profile(target: &Target, tenant: &str) -> Result<String, ServeError> {
    fetch_body(target, &format!("APROF/1 PROFILE tenant={tenant}"))
}

/// Fetches a tenant's aggregate as a standalone HTML report.
///
/// # Errors
///
/// As [`fetch_profile`].
pub fn fetch_report(target: &Target, tenant: &str) -> Result<String, ServeError> {
    fetch_body(target, &format!("APROF/1 REPORT tenant={tenant}"))
}

/// Fetches the daemon's live `obs.json` snapshot.
///
/// # Errors
///
/// Transport failures and malformed replies.
pub fn fetch_obs(target: &Target) -> Result<String, ServeError> {
    fetch_body(target, "APROF/1 OBS")
}

/// Fetches the tenant listing (one `name streams=… events=…` line each).
///
/// # Errors
///
/// Transport failures and malformed replies.
pub fn fetch_tenants(target: &Target) -> Result<String, ServeError> {
    fetch_body(target, "APROF/1 TENANTS")
}

/// Pings the daemon.
///
/// # Errors
///
/// Transport failures; an unexpected reply surfaces as
/// [`ServeError::Protocol`].
pub fn ping(target: &Target) -> Result<(), ServeError> {
    let mut conn = target.connect()?;
    writeln!(conn, "APROF/1 PING")?;
    conn.flush()?;
    let line = read_line(&mut conn)?;
    match line.as_str() {
        "OK pong" => Ok(()),
        other => Err(ServeError::Protocol(format!("unexpected ping reply {other:?}"))),
    }
}

/// Asks the daemon to shut down: gracefully draining in-flight streams
/// (`now = false`) or immediately (`now = true`).
///
/// # Errors
///
/// Transport failures and `ERR` replies.
pub fn shutdown(target: &Target, now: bool) -> Result<(), ServeError> {
    let mut conn = target.connect()?;
    let mode = if now { "now" } else { "drain" };
    writeln!(conn, "APROF/1 SHUTDOWN mode={mode}")?;
    conn.flush()?;
    let line = read_line(&mut conn)?;
    parse_reply_line(&line)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing() {
        assert_eq!("unix:/tmp/s.sock".parse::<Target>().unwrap(), Target::Unix("/tmp/s.sock".into()));
        assert_eq!("tcp:127.0.0.1:7071".parse::<Target>().unwrap(), Target::Tcp("127.0.0.1:7071".into()));
        assert_eq!("127.0.0.1:7071".parse::<Target>().unwrap(), Target::Tcp("127.0.0.1:7071".into()));
        assert!("nonsense".parse::<Target>().is_err());
    }

    #[test]
    fn reply_parsing() {
        let words = parse_reply_line("OK events=12 chunks=3").unwrap();
        assert_eq!(field(&words, "events"), Some(12));
        assert_eq!(field(&words, "chunks"), Some(3));
        assert_eq!(field(&words, "duplicate"), None);
        assert!(matches!(parse_reply_line("ERR nope"), Err(ServeError::Remote(_))));
        assert!(parse_reply_line("garbage").is_err());
    }

    #[test]
    fn typed_err_reasons() {
        assert!(matches!(
            parse_err_reason("busy retry-after 250"),
            ServeError::Busy { retry_after } if retry_after == Duration::from_millis(250)
        ));
        assert!(matches!(
            parse_err_reason("quarantined: tenant disabled after repeated failures"),
            ServeError::Quarantined
        ));
        assert!(matches!(parse_err_reason("busy retry-after soon"), ServeError::Remote(_)));
        assert!(matches!(parse_err_reason("wire error: bad crc"), ServeError::Remote(_)));
    }
}
