//! Per-tenant state: aggregates, quotas, and the backpressure gate.

use crate::{ServeConfig, ServeError};
use aprof_core::ProfileReport;
use aprof_obs::counters;
use aprof_vm::ResourceLimits;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One tenant's committed state plus its in-flight accounting.
#[derive(Default)]
struct TenantState {
    /// Streams currently decoding (bounded by `max_in_flight`).
    in_flight: usize,
    /// Ids of the streams currently decoding. A stream id admits at most
    /// one submission at a time — concurrent retries of the same id would
    /// otherwise race on one `.part` spool file and could corrupt a
    /// commit; later arrivals wait out the first and then resolve as a
    /// duplicate or a fresh admission.
    active: BTreeSet<String>,
    /// Events aggregated over all committed streams.
    events_total: u64,
    /// Spool footprint of committed streams, in 8-byte cells.
    spooled_cells: u64,
    /// Committed per-stream profiles, keyed by stream id. BTreeMap order
    /// (lexicographic) fixes the merge order, which fixes the aggregate's
    /// canonical bytes.
    reports: BTreeMap<String, ProfileReport>,
}

/// A row of the `TENANTS` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSummary {
    /// Tenant name.
    pub tenant: String,
    /// Committed streams.
    pub streams: usize,
    /// Events aggregated across those streams.
    pub events: u64,
    /// Spool footprint in 8-byte cells.
    pub spooled_cells: u64,
    /// Streams currently decoding.
    pub in_flight: usize,
}

/// What `admit` decided for a submission.
pub(crate) enum Admission<'a> {
    /// Proceed; the guard holds an in-flight slot and carries the event
    /// budget left at admission time.
    Slot(SlotGuard<'a>),
    /// The stream id is already committed — acknowledge idempotently
    /// without aggregating again.
    Duplicate,
}

/// The tenant registry: all tenant state behind one lock, plus the condvar
/// that parks submissions waiting out backpressure.
pub(crate) struct Registry {
    inner: Mutex<BTreeMap<String, TenantState>>,
    cv: Condvar,
    max_in_flight: usize,
    queue_timeout: Duration,
    quota: ResourceLimits,
    /// The retry-after hint carried by busy refusals.
    retry_after: Duration,
}

impl Registry {
    pub(crate) fn new(cfg: &ServeConfig) -> Registry {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
            cv: Condvar::new(),
            max_in_flight: cfg.max_in_flight.max(1),
            queue_timeout: cfg.queue_timeout,
            quota: cfg.quota,
            retry_after: cfg.shed.retry_after,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TenantState>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits (or refuses) a submission for `tenant`/`stream`.
    ///
    /// Blocks while the tenant is at its in-flight cap — that wait *is* the
    /// backpressure: the daemon stops reading the socket, the kernel's
    /// buffers fill, and the client's writes stall. Waiting past
    /// `queue_timeout` refuses the stream busy. A stalled admission bumps
    /// `serve.backpressure_stalls` once, however many wakeups it takes.
    pub(crate) fn admit(&self, tenant: &str, stream: &str) -> Result<Admission<'_>, ServeError> {
        let deadline = Instant::now() + self.queue_timeout;
        let mut inner = self.lock();
        let mut stalled = false;
        loop {
            let state = inner.entry(tenant.to_owned()).or_default();
            if state.reports.contains_key(stream) {
                return Ok(Admission::Duplicate);
            }
            if state.events_total >= self.quota.max_instructions {
                counters::SERVE_QUOTA_TRIPS.incr();
                return Err(ServeError::Quota(format!(
                    "tenant {tenant} exhausted its event budget ({})",
                    self.quota.max_instructions
                )));
            }
            if state.in_flight < self.max_in_flight && !state.active.contains(stream) {
                state.in_flight += 1;
                state.active.insert(stream.to_owned());
                let budget = self.quota.max_instructions - state.events_total;
                return Ok(Admission::Slot(SlotGuard {
                    registry: self,
                    tenant: tenant.to_owned(),
                    stream: stream.to_owned(),
                    events_budget: budget,
                }));
            }
            if !stalled {
                stalled = true;
                counters::SERVE_BACKPRESSURE_STALLS.incr();
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Busy { retry_after: self.retry_after });
            }
            let (guard, _timeout) =
                self.cv.wait_timeout(inner, deadline - now).unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    fn release(&self, tenant: &str, stream: &str) {
        let mut inner = self.lock();
        if let Some(state) = inner.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
            state.active.remove(stream);
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Folds a validated, durably spooled stream into its tenant. Enforces
    /// the spool-cells quota; a refusal here means the caller must undo the
    /// spool commit (the file was renamed but not yet acknowledged).
    pub(crate) fn commit(
        &self,
        tenant: &str,
        stream: &str,
        report: ProfileReport,
        events: u64,
        cells: u64,
    ) -> Result<(), ServeError> {
        let mut inner = self.lock();
        let state = inner.entry(tenant.to_owned()).or_default();
        if state.spooled_cells.saturating_add(cells) > self.quota.max_alloc_cells {
            counters::SERVE_QUOTA_TRIPS.incr();
            return Err(ServeError::Quota(format!(
                "tenant {tenant} would exceed its spool quota ({} cells)",
                self.quota.max_alloc_cells
            )));
        }
        state.events_total += events;
        state.spooled_cells += cells;
        state.reports.insert(stream.to_owned(), report);
        counters::SERVE_STREAMS_COMMITTED.incr();
        counters::SERVE_EVENTS_AGGREGATED.add(events);
        let active = inner.values().filter(|t| !t.reports.is_empty()).count() as u64;
        counters::SERVE_ACTIVE_TENANTS.store(active);
        Ok(())
    }

    /// Undoes a [`Registry::commit`] whose durable rename failed, so the
    /// in-memory aggregate never leads a spool that cannot catch up.
    pub(crate) fn evict(&self, tenant: &str, stream: &str, events: u64, cells: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.get_mut(tenant) {
            if state.reports.remove(stream).is_some() {
                state.events_total = state.events_total.saturating_sub(events);
                state.spooled_cells = state.spooled_cells.saturating_sub(cells);
            }
        }
        let active = inner.values().filter(|t| !t.reports.is_empty()).count() as u64;
        counters::SERVE_ACTIVE_TENANTS.store(active);
    }

    /// Re-installs a stream recovered from the spool (no quota checks — it
    /// was already admitted and committed in a previous life).
    pub(crate) fn restore(&self, tenant: &str, stream: &str, report: ProfileReport, events: u64, cells: u64) {
        let mut inner = self.lock();
        let state = inner.entry(tenant.to_owned()).or_default();
        state.events_total += events;
        state.spooled_cells += cells;
        state.reports.insert(stream.to_owned(), report);
        let active = inner.values().filter(|t| !t.reports.is_empty()).count() as u64;
        counters::SERVE_ACTIVE_TENANTS.store(active);
    }

    /// The tenant's aggregate: committed stream profiles merged in
    /// lexicographic stream-id order. `None` for unknown/empty tenants.
    pub(crate) fn aggregate(&self, tenant: &str) -> Option<ProfileReport> {
        let inner = self.lock();
        let state = inner.get(tenant)?;
        if state.reports.is_empty() {
            return None;
        }
        let reports: Vec<ProfileReport> = state.reports.values().cloned().collect();
        Some(ProfileReport::merge(&reports))
    }

    /// All tenants, in name order.
    pub(crate) fn summaries(&self) -> Vec<TenantSummary> {
        self.lock()
            .iter()
            .map(|(tenant, state)| TenantSummary {
                tenant: tenant.clone(),
                streams: state.reports.len(),
                events: state.events_total,
                spooled_cells: state.spooled_cells,
                in_flight: state.in_flight,
            })
            .collect()
    }

    /// Total streams currently decoding across all tenants (drain waits on
    /// this reaching zero).
    pub(crate) fn total_in_flight(&self) -> usize {
        self.lock().values().map(|t| t.in_flight).sum()
    }

    /// Committed spool footprint across all tenants, in 8-byte cells (the
    /// load shedder's spool-headroom input).
    pub(crate) fn total_spooled_cells(&self) -> u64 {
        self.lock().values().map(|t| t.spooled_cells).sum()
    }

    /// Events a tenant has committed so far (the load shedder's
    /// tenant-pressure input; 0 for unknown tenants).
    pub(crate) fn tenant_events(&self, tenant: &str) -> u64 {
        self.lock().get(tenant).map_or(0, |t| t.events_total)
    }
}

/// RAII in-flight slot: released on drop, including on panic, so an
/// injected worker panic cannot leak a tenant's slot and wedge its queue.
pub(crate) struct SlotGuard<'a> {
    registry: &'a Registry,
    tenant: String,
    stream: String,
    events_budget: u64,
}

impl SlotGuard<'_> {
    /// Events this stream may still aggregate (budget snapshot at
    /// admission).
    pub(crate) fn events_budget(&self) -> u64 {
        self.events_budget
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.registry.release(&self.tenant, &self.stream);
    }
}
