//! `aprof-serve`: a multi-tenant streaming profiling service daemon.
//!
//! Everything the reproduction can do one-shot from the CLI — chunked
//! CRC-checked wire traces, streaming [`consume_stream`] replay, crash-safe
//! durable capture, fault plans, obs counters, HTML reports — is packaged
//! here as a long-running service:
//!
//! * **Streaming ingest.** Clients submit wire traces over unix or TCP
//!   sockets. The daemon tees the bytes to a durable spool file while
//!   decoding them incrementally ([`aprof_wire::WireReader`] works directly
//!   over a socket) and folding events into a per-stream
//!   [`TrmsProfiler`](aprof_core::TrmsProfiler) as chunks arrive — the full
//!   trace is never materialized in memory.
//! * **Tenancy.** Streams are grouped by tenant. Each tenant's quota is an
//!   [`aprof_vm::ResourceLimits`]: `max_instructions` bounds the events the
//!   tenant may aggregate, `max_alloc_cells` bounds its spool footprint (in
//!   8-byte cells), and `trap` selects graceful refusal (`ERR` reply) vs.
//!   hard disconnect.
//! * **Backpressure.** A tenant may have at most `max_in_flight` streams
//!   decoding concurrently; further submissions block (bounded by
//!   `queue_timeout`) before being turned away busy.
//! * **Zero-data-loss commit.** A stream is acknowledged only after its
//!   trailing index validated, its spool file reached stable storage, and
//!   its profile joined the tenant aggregate — in that order. On restart
//!   the daemon replays the spool, so acknowledged data survives a kill at
//!   any instant, and re-submitting a committed stream id is an idempotent
//!   duplicate.
//! * **Determinism.** A tenant's aggregate is the
//!   [`ProfileReport::merge`](aprof_core::ProfileReport::merge) of its
//!   committed streams in lexicographic stream-id order, which makes it
//!   byte-identical (via
//!   [`ProfileReport::to_canonical_text`](aprof_core::ProfileReport::to_canonical_text))
//!   to a
//!   one-shot `aprof-cli replay` of the same traces in sorted order.
//! * **Live endpoints.** The same sockets answer `obs.json`, tenant
//!   listings, canonical profiles and HTML reports — over the line
//!   protocol or plain HTTP `GET`.
//!
//! See `DESIGN.md` §12 for the architecture discussion and the wire
//! protocol grammar.
//!
//! [`consume_stream`]: aprof_core::consume_stream

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use aprof_faults::{FaultConfig, FaultPlan};
use aprof_vm::ResourceLimits;
use aprof_wire::WireError;

pub mod client;
mod protocol;
mod server;
mod spool;
mod supervisor;
mod tenant;

pub use client::{Ack, RetryPolicy, Target};
pub use server::{Server, ServerHandle};
pub use supervisor::BreakerConfig;
pub use tenant::TenantSummary;

/// How a submission may address a tenant or stream: 1–64 bytes, first byte
/// ASCII alphanumeric, rest alphanumeric or `.`/`_`/`-`. (The leading
/// alphanumeric keeps spool paths inside the spool directory.)
pub fn valid_name(name: &str) -> bool {
    let bytes = name.as_bytes();
    !bytes.is_empty()
        && bytes.len() <= 64
        && bytes[0].is_ascii_alphanumeric()
        && bytes.iter().all(|&b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the unix listening socket, if any.
    pub unix: Option<PathBuf>,
    /// TCP listen address (e.g. `127.0.0.1:0`), if any.
    pub tcp: Option<String>,
    /// Spool directory: one subdirectory per tenant, one `<stream>.wire`
    /// file per committed stream. Created if missing; replayed on startup.
    pub spool: PathBuf,
    /// Per-tenant cap on concurrently decoding streams; submissions beyond
    /// it wait (backpressure) up to [`ServeConfig::queue_timeout`].
    pub max_in_flight: usize,
    /// How long a submission may wait for an in-flight slot before being
    /// refused busy.
    pub queue_timeout: Duration,
    /// Per-tenant quota, expressed as VM resource limits:
    /// `max_instructions` = aggregated-event budget, `max_alloc_cells` =
    /// spool footprint in 8-byte cells, `trap` = refuse gracefully (`true`)
    /// or drop the connection (`false`).
    pub quota: ResourceLimits,
    /// Fault plan injected into the service paths (spool writes and commit
    /// stages, worker delays/panics, accept-loop panics). `None` in
    /// production.
    pub faults: Option<FaultConfig>,
    /// Overall wall-clock budget for one submission stream, half-close to
    /// ack. A peer dribbling bytes slower than this (slow-loris) is
    /// evicted with `ERR` and counted in `serve.shed.slow_evictions`.
    pub stream_deadline: Duration,
    /// Per-write socket timeout on server connections, so a peer that
    /// stops draining its response cannot pin a worker.
    pub write_timeout: Duration,
    /// Deterministic load-shedding thresholds.
    pub shed: ShedConfig,
    /// Per-tenant circuit-breaker policy.
    pub breaker: BreakerConfig,
}

/// Deterministic load-shedding thresholds: when any of these is crossed at
/// submission time the daemon refuses the stream with
/// `ERR busy retry-after <ms>` instead of degrading everyone. The checks
/// are pure functions of registry state, never of wall-clock sampling, so
/// a given load pattern sheds reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Daemon-wide ceiling on concurrently active connections; submissions
    /// arriving above it are shed. (Queries still answer — shedding only
    /// refuses new ingest work.)
    pub max_active_conns: usize,
    /// Total spool capacity across all tenants, in 8-byte cells;
    /// submissions are shed once committed spool usage reaches it
    /// (`u64::MAX` = unlimited).
    pub spool_capacity_cells: u64,
    /// Shed a tenant's submissions once its committed events reach this
    /// percentage of its event budget (100 = disabled; admission control
    /// already refuses at 100%).
    pub tenant_pressure_pct: u8,
    /// The `retry-after` hint attached to shed/busy refusals.
    pub retry_after: Duration,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            max_active_conns: 256,
            spool_capacity_cells: u64::MAX,
            tenant_pressure_pct: 100,
            retry_after: Duration::from_millis(250),
        }
    }
}

impl ServeConfig {
    /// A daemon serving `spool` with both listeners unset and default
    /// limits; set at least one of [`ServeConfig::unix`] /
    /// [`ServeConfig::tcp`] before starting.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        ServeConfig {
            unix: None,
            tcp: None,
            spool: spool.into(),
            max_in_flight: 8,
            queue_timeout: Duration::from_secs(10),
            quota: ResourceLimits { trap: true, ..ResourceLimits::default() },
            faults: None,
            stream_deadline: Duration::from_secs(120),
            write_timeout: Duration::from_secs(30),
            shed: ShedConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }

    pub(crate) fn fault_plan(&self) -> FaultPlan {
        match self.faults {
            Some(cfg) => FaultPlan::new(cfg),
            None => FaultPlan::disabled(),
        }
    }
}

/// Everything that can go wrong inside the daemon or its client.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or spool I/O failure.
    Io(io::Error),
    /// The submitted trace failed wire validation (CRC, framing, missing
    /// or corrupt index).
    Wire(WireError),
    /// The peer spoke something other than the `APROF/1` line protocol
    /// (or an over-long / malformed request line).
    Protocol(String),
    /// A per-tenant quota refused the submission.
    Quota(String),
    /// The submission was shed or timed out of the admission queue; the
    /// daemon suggests retrying after the hinted delay. This is the only
    /// *retryable* refusal — idempotent re-submission is safe.
    Busy {
        /// Suggested client-side wait before retrying.
        retry_after: Duration,
    },
    /// The tenant's circuit breaker is open (repeated recent failures);
    /// submissions are refused until a half-open probe succeeds.
    Quarantined,
    /// The stream blew its overall ingest deadline (slow-loris eviction).
    Deadline,
    /// The daemon is draining and no longer accepts submissions.
    Draining,
    /// The server replied `ERR` to a client call.
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Quota(msg) => write!(f, "quota exceeded: {msg}"),
            // The wire shape `busy retry-after <ms>` is parsed back by the
            // client (`ERR ` + this Display) — keep them in sync.
            ServeError::Busy { retry_after } => {
                write!(f, "busy retry-after {}", retry_after.as_millis())
            }
            ServeError::Quarantined => {
                write!(f, "quarantined: tenant disabled after repeated failures")
            }
            ServeError::Deadline => write!(f, "stream deadline exceeded: slow client evicted"),
            ServeError::Draining => write!(f, "daemon is draining"),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_name("tenant-1"));
        assert!(valid_name("a"));
        assert!(valid_name("web.frontend_2"));
        assert!(!valid_name(""));
        assert!(!valid_name(".."));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("-dash"));
        assert!(!valid_name("has/slash"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(&"x".repeat(65)));
        assert!(valid_name(&"x".repeat(64)));
    }
}
