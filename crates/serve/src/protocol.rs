//! The `APROF/1` line protocol and its HTTP `GET` sibling.
//!
//! Every connection starts with one LF-terminated request line:
//!
//! ```text
//! APROF/1 SUBMIT tenant=web stream=trace-001   ← then raw wire bytes + half-close
//! APROF/1 PING
//! APROF/1 TENANTS
//! APROF/1 PROFILE tenant=web                   ← canonical profile text
//! APROF/1 REPORT tenant=web                    ← HTML report
//! APROF/1 OBS                                  ← obs.json snapshot
//! APROF/1 SHUTDOWN mode=drain|now
//! ```
//!
//! Replies are `OK ...\n` / `ERR <reason>\n`; body-bearing replies are
//! `OK <len>\n` followed by exactly `len` bytes. A browser pointed at the
//! TCP listener works too: `GET /obs.json`, `/healthz`, `/tenants`,
//! `/profile/<tenant>` and `/report/<tenant>` answer minimal HTTP/1.0.

use crate::ServeError;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Longest accepted request line (bytes, LF included).
pub(crate) const MAX_LINE: usize = 4096;

/// A connection from either listener, unified behind `Read + Write`.
pub(crate) enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    /// Half-closes the write side, signalling end-of-request to the peer.
    pub(crate) fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
        }
    }

    /// Bounds every blocking read so a dead peer cannot pin a worker (and
    /// cannot stall a graceful drain) forever.
    pub(crate) fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    /// Bounds every blocking write so a peer that stops draining its
    /// response (while keeping the connection alive) cannot pin a worker.
    pub(crate) fn set_write_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(Some(timeout)),
            Conn::Tcp(s) => s.set_write_timeout(Some(timeout)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Request {
    Submit { tenant: String, stream: String },
    Ping,
    Tenants,
    Profile { tenant: String },
    Report { tenant: String },
    Obs,
    Shutdown { now: bool },
    /// `GET <path> ...` — answered as HTTP instead of the line protocol.
    Http { path: String },
}

/// Reads one LF-terminated line byte-at-a-time so no bytes beyond the line
/// are consumed (the wire body follows directly on `SUBMIT` connections).
/// The trailing LF (and optional CR) are stripped.
pub(crate) fn read_line<R: Read>(r: &mut R) -> Result<String, ServeError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = r.read(&mut byte)?;
        if n == 0 {
            return Err(ServeError::Protocol("connection closed mid-request-line".into()));
        }
        if byte[0] == b'\n' {
            break;
        }
        if line.len() >= MAX_LINE {
            return Err(ServeError::Protocol("request line too long".into()));
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ServeError::Protocol("request line is not UTF-8".into()))
}

fn kv<'a>(words: &'a [&'a str], key: &str) -> Option<&'a str> {
    words.iter().find_map(|w| w.strip_prefix(key)?.strip_prefix('='))
}

fn require_name(words: &[&str], key: &str) -> Result<String, ServeError> {
    let value =
        kv(words, key).ok_or_else(|| ServeError::Protocol(format!("missing {key}=<name>")))?;
    if !crate::valid_name(value) {
        return Err(ServeError::Protocol(format!("invalid {key} name {value:?}")));
    }
    Ok(value.to_owned())
}

/// Parses one request line (already LF-stripped).
pub(crate) fn parse_request(line: &str) -> Result<Request, ServeError> {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words.as_slice() {
        ["GET", path, ..] => Ok(Request::Http { path: (*path).to_owned() }),
        ["APROF/1", verb, rest @ ..] => match *verb {
            "SUBMIT" => Ok(Request::Submit {
                tenant: require_name(rest, "tenant")?,
                stream: require_name(rest, "stream")?,
            }),
            "PING" => Ok(Request::Ping),
            "TENANTS" => Ok(Request::Tenants),
            "PROFILE" => Ok(Request::Profile { tenant: require_name(rest, "tenant")? }),
            "REPORT" => Ok(Request::Report { tenant: require_name(rest, "tenant")? }),
            "OBS" => Ok(Request::Obs),
            "SHUTDOWN" => match kv(rest, "mode").unwrap_or("drain") {
                "drain" => Ok(Request::Shutdown { now: false }),
                "now" => Ok(Request::Shutdown { now: true }),
                other => Err(ServeError::Protocol(format!("unknown shutdown mode {other:?}"))),
            },
            other => Err(ServeError::Protocol(format!("unknown verb {other:?}"))),
        },
        [] => Err(ServeError::Protocol("empty request line".into())),
        _ => Err(ServeError::Protocol("expected APROF/1 <VERB> or GET <path>".into())),
    }
}

/// Writes an `OK <len>\n<body>` framed reply.
pub(crate) fn write_body<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    writeln!(w, "OK {}", body.len())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Writes a minimal HTTP/1.0 response and flushes.
pub(crate) fn write_http<W: Write>(
    w: &mut W,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_and_queries() {
        assert_eq!(
            parse_request("APROF/1 SUBMIT tenant=web stream=t-1").unwrap(),
            Request::Submit { tenant: "web".into(), stream: "t-1".into() }
        );
        assert_eq!(parse_request("APROF/1 PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("APROF/1 PROFILE tenant=web").unwrap(),
            Request::Profile { tenant: "web".into() }
        );
        assert_eq!(
            parse_request("APROF/1 SHUTDOWN mode=now").unwrap(),
            Request::Shutdown { now: true }
        );
        assert_eq!(
            parse_request("APROF/1 SHUTDOWN").unwrap(),
            Request::Shutdown { now: false }
        );
        assert_eq!(
            parse_request("GET /obs.json HTTP/1.1").unwrap(),
            Request::Http { path: "/obs.json".into() }
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("APROF/1 SUBMIT tenant=web").is_err());
        assert!(parse_request("APROF/1 SUBMIT tenant=../x stream=s").is_err());
        assert!(parse_request("APROF/1 FROB").is_err());
    }

    #[test]
    fn read_line_stops_at_lf_and_leaves_rest() {
        let mut src = io::Cursor::new(b"APROF/1 PING\r\nBODY".to_vec());
        assert_eq!(read_line(&mut src).unwrap(), "APROF/1 PING");
        let mut rest = Vec::new();
        src.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"BODY");
    }

    #[test]
    fn read_line_bounds_length() {
        let long = vec![b'x'; MAX_LINE + 10];
        let mut src = io::Cursor::new(long);
        assert!(matches!(read_line(&mut src), Err(ServeError::Protocol(_))));
    }
}
