//! The durable spool: the daemon's write-ahead store of committed streams.
//!
//! Layout: `<spool>/<tenant>/<stream>.wire` for committed streams and
//! `<stream>.part` while a submission is still decoding. The commit
//! sequence is
//!
//! 1. flush + `sync_data` the `.part` file (bytes durable),
//! 2. rename `.part` → `.wire` (atomic commit point),
//! 3. `sync_data` the tenant directory (rename durable),
//! 4. fold the profile into the in-memory aggregate,
//! 5. acknowledge the client.
//!
//! Because the ack comes last, every acknowledged stream has a durable
//! `.wire` file; a daemon killed between (3) and (5) re-aggregates the
//! stream on restart and answers the client's retry with an idempotent
//! duplicate ack. `.part` leftovers are un-acknowledged by construction
//! and are deleted during recovery.

use crate::{ServeError, valid_name};
use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_faults::FaultPlan;
use aprof_obs::counters;
use std::fs::{self, File};
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Handle on the spool directory.
#[derive(Debug, Clone)]
pub(crate) struct Spool {
    dir: PathBuf,
    /// Fault plan for the commit stages (rename). Disabled in production.
    plan: FaultPlan,
}

/// A stable per-stream ordinal for commit-stage fault decisions: an FNV-1a
/// hash of `tenant/stream`, so the injected schedule is a function of the
/// stream's identity, not of arrival order or thread interleaving.
pub(crate) fn name_ordinal(tenant: &str, stream: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([b'/']).chain(stream.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What startup recovery found: replayable streams plus damaged files.
pub(crate) type RecoveryOutcome = (Vec<RecoveredStream>, Vec<(PathBuf, ServeError)>);

/// One stream replayed from the spool during startup recovery.
pub(crate) struct RecoveredStream {
    pub tenant: String,
    pub stream: String,
    pub report: ProfileReport,
    pub events: u64,
    pub bytes: u64,
}

impl Spool {
    /// Opens (creating if needed) the spool directory. `plan` governs
    /// injected commit-stage faults.
    pub(crate) fn open(dir: &Path, plan: FaultPlan) -> Result<Spool, ServeError> {
        fs::create_dir_all(dir)?;
        Ok(Spool { dir: dir.to_owned(), plan })
    }

    fn tenant_dir(&self, tenant: &str) -> PathBuf {
        self.dir.join(tenant)
    }

    pub(crate) fn part_path(&self, tenant: &str, stream: &str) -> PathBuf {
        self.tenant_dir(tenant).join(format!("{stream}.part"))
    }

    pub(crate) fn wire_path(&self, tenant: &str, stream: &str) -> PathBuf {
        self.tenant_dir(tenant).join(format!("{stream}.wire"))
    }

    /// Creates (truncating any stale leftover) the `.part` file for an
    /// in-flight submission.
    pub(crate) fn create_part(&self, tenant: &str, stream: &str) -> Result<File, ServeError> {
        fs::create_dir_all(self.tenant_dir(tenant))?;
        Ok(File::create(self.part_path(tenant, stream))?)
    }

    /// Atomically promotes a synced `.part` to `.wire` and makes the rename
    /// itself durable. This is the commit point of the ingest path. A
    /// failure here (e.g. disk full — injectable via the fault plan's
    /// rename class) leaves the `.part` in place; the caller rolls the
    /// in-memory commit back so no half-committed stream is ever latched.
    pub(crate) fn commit(&self, tenant: &str, stream: &str) -> Result<(), ServeError> {
        if let Some(e) = self.plan.rename_fault(name_ordinal(tenant, stream)) {
            return Err(e.into());
        }
        fs::rename(self.part_path(tenant, stream), self.wire_path(tenant, stream))?;
        File::open(self.tenant_dir(tenant))?.sync_data()?;
        Ok(())
    }

    /// Removes the `.part` of an aborted submission (best-effort).
    pub(crate) fn discard_part(&self, tenant: &str, stream: &str) {
        let _ = fs::remove_file(self.part_path(tenant, stream));
    }

    /// Replays every committed stream back into profiles and deletes
    /// un-acknowledged `.part` leftovers. Streams come back sorted by
    /// `(tenant, stream)` so callers rebuild aggregates deterministically.
    ///
    /// A `.wire` file that fails strict validation is reported in the
    /// second return slot and left on disk for inspection — it is *not*
    /// silently dropped from the data-loss accounting.
    pub(crate) fn recover(&self) -> Result<RecoveryOutcome, ServeError> {
        let mut streams = Vec::new();
        let mut damaged = Vec::new();
        let mut tenants: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        tenants.sort();
        for tenant_dir in tenants {
            let Some(tenant) = tenant_dir.file_name().and_then(|n| n.to_str()) else { continue };
            if !valid_name(tenant) {
                continue;
            }
            let tenant = tenant.to_owned();
            let mut files: Vec<PathBuf> = fs::read_dir(&tenant_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            files.sort();
            for path in files {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                if let Some(stream) = name.strip_suffix(".part") {
                    if valid_name(stream) {
                        let _ = fs::remove_file(&path);
                    }
                    continue;
                }
                let Some(stream) = name.strip_suffix(".wire") else { continue };
                if !valid_name(stream) {
                    continue;
                }
                match replay_wire(&path) {
                    Ok((report, events, bytes)) => {
                        counters::SERVE_RECOVERED_STREAMS.incr();
                        streams.push(RecoveredStream {
                            tenant: tenant.clone(),
                            stream: stream.to_owned(),
                            report,
                            events,
                            bytes,
                        });
                    }
                    Err(e) => damaged.push((path, e)),
                }
            }
        }
        Ok((streams, damaged))
    }
}

/// Strict-replays one committed `.wire` file into a profile.
fn replay_wire(path: &Path) -> Result<(ProfileReport, u64, u64), ServeError> {
    let bytes = fs::metadata(path)?.len();
    let file = BufReader::new(File::open(path)?);
    let mut reader = aprof_wire::WireReader::new(file)?.strict();
    let mut profiler = TrmsProfiler::new();
    let events = profiler.consume_stream(&mut reader)?;
    if reader.index().is_none() {
        return Err(ServeError::Wire(aprof_wire::WireError::UnexpectedEof {
            context: "spooled stream ended without a validated index",
        }));
    }
    let names = reader.routines().clone();
    Ok((profiler.into_report(&names), events, bytes))
}

/// Spool footprint of a byte count, in the VM's 8-byte cells (rounding up),
/// so `ResourceLimits::max_alloc_cells` doubles as a spool quota.
pub(crate) fn bytes_to_cells(bytes: u64) -> u64 {
    bytes.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_round_up() {
        assert_eq!(bytes_to_cells(0), 0);
        assert_eq!(bytes_to_cells(1), 1);
        assert_eq!(bytes_to_cells(8), 1);
        assert_eq!(bytes_to_cells(9), 2);
    }
}
