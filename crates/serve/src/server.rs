//! The daemon: listeners, connection workers, ingest, drain.

use crate::protocol::{self, Conn, Request};
use crate::spool::{bytes_to_cells, name_ordinal, Spool};
use crate::supervisor::{Backoff, BreakerBank, Outcome};
use crate::tenant::{Admission, Registry};
use crate::{ServeConfig, ServeError};
use aprof_analysis::{render_report, ReportInputs};
use aprof_core::{ProfileReport, TrmsProfiler};
use aprof_faults::{FaultPlan, WorkerFault};
use aprof_obs::counters;
use aprof_trace::{Event, ThreadId};
use aprof_wire::{WireError, WireReader};
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Lifecycle states (stored in `Shared::state`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPING: u8 = 2;

/// How long an accept loop sleeps between polls of its non-blocking
/// listener (also the latency bound on noticing a shutdown request).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-read socket timeout: a silent peer cannot pin a worker (or stall a
/// drain) longer than this.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Read-buffer capacity between the socket and the wire decoder.
const SOCKET_BUF: usize = 64 << 10;

struct Shared {
    cfg: ServeConfig,
    registry: Registry,
    spool: Spool,
    plan: FaultPlan,
    breakers: BreakerBank,
    state: AtomicU8,
    conn_seq: AtomicU64,
    active_conns: AtomicUsize,
    drain_started: Mutex<Option<Instant>>,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self, now: bool) {
        let target = if now { STOPPING } else { DRAINING };
        // Only ratchet upwards; record when the drain began.
        let mut started = self.drain_started.lock().unwrap_or_else(|e| e.into_inner());
        if started.is_none() {
            *started = Some(Instant::now());
        }
        self.state.fetch_max(target, Ordering::SeqCst);
    }
}

/// The daemon type. [`Server::start`] is the only entry point.
pub struct Server;

/// A started daemon: join it with [`ServerHandle::wait`], stop it with
/// [`ServerHandle::shutdown`] (or a client `SHUTDOWN` request).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    /// Spooled `.wire` files that failed validation during startup
    /// recovery (left on disk for inspection).
    pub damaged: Vec<(PathBuf, ServeError)>,
}

impl Server {
    /// Recovers the spool, binds the configured listeners and starts
    /// accepting connections.
    pub fn start(cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        if cfg.unix.is_none() && cfg.tcp.is_none() {
            return Err(ServeError::Protocol("no listener configured".into()));
        }
        let plan = cfg.fault_plan();
        let spool = Spool::open(&cfg.spool, plan)?;
        let registry = Registry::new(&cfg);
        let (recovered, damaged) = spool.recover()?;
        for s in recovered {
            registry.restore(&s.tenant, &s.stream, s.report, s.events, bytes_to_cells(s.bytes));
        }
        let breakers = BreakerBank::new(cfg.breaker);
        let shared = Arc::new(Shared {
            registry,
            spool,
            plan,
            breakers,
            state: AtomicU8::new(RUNNING),
            conn_seq: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            drain_started: Mutex::new(None),
            cfg,
        });

        let mut accept_threads = Vec::new();
        if let Some(path) = shared.cfg.unix.clone() {
            // A stale socket file from a previous life would make bind fail.
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            listener.set_nonblocking(true)?;
            let shared = Arc::clone(&shared);
            accept_threads.push(thread::spawn(move || {
                supervised_accept_loop(&shared, || listener.accept().map(|(s, _)| Conn::Unix(s)));
            }));
        }
        let mut tcp_addr = None;
        if let Some(addr) = shared.cfg.tcp.clone() {
            let listener = TcpListener::bind(&addr)?;
            tcp_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let shared = Arc::clone(&shared);
            accept_threads.push(thread::spawn(move || {
                supervised_accept_loop(&shared, || listener.accept().map(|(s, _)| Conn::Tcp(s)));
            }));
        }
        Ok(ServerHandle { shared, accept_threads, tcp_addr, damaged })
    }
}

impl ServerHandle {
    /// The bound TCP address (useful with a `:0` listen spec).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Requests shutdown: `now = false` drains (stop accepting, let
    /// in-flight streams finish), `now = true` stops without waiting.
    pub fn shutdown(&self, now: bool) {
        self.shared.request_shutdown(now);
    }

    /// Blocks until the daemon shuts down (via [`ServerHandle::shutdown`]
    /// or a client `SHUTDOWN`), drains in-flight work unless the shutdown
    /// was immediate, and releases the listeners. Records the drain
    /// duration in `serve.drain_micros`.
    pub fn wait(self) -> Result<(), ServeError> {
        for t in self.accept_threads {
            let _ = t.join();
        }
        // Listeners are gone. Drain the connections still in flight.
        if self.shared.state() != STOPPING {
            while self.shared.active_conns.load(Ordering::SeqCst) > 0
                || self.shared.registry.total_in_flight() > 0
            {
                thread::sleep(Duration::from_millis(5));
                if self.shared.state() == STOPPING {
                    break;
                }
            }
        }
        let started = self
            .shared
            .drain_started
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .unwrap_or_else(Instant::now);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        counters::SERVE_DRAIN_MICROS.store(micros);
        if let Some(path) = &self.shared.cfg.unix {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Supervisor for one listener: runs [`accept_loop`], and when the loop
/// body panics (injected accept faults, or a genuine bug) restarts it after
/// deterministic jittered exponential backoff instead of letting the
/// listener thread die silently. The loop only ends for real once the
/// daemon leaves `RUNNING`.
fn supervised_accept_loop<F>(shared: &Arc<Shared>, mut accept: F)
where
    F: FnMut() -> io::Result<Conn>,
{
    let mut backoff = Backoff::new(
        Duration::from_millis(1),
        Duration::from_millis(100),
        shared.plan.config().seed,
    );
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| accept_loop(shared, &mut accept)));
        match run {
            Ok(()) => break,
            Err(_) => {
                if shared.state() != RUNNING {
                    break;
                }
                counters::SERVE_SUPERVISOR_LISTENER_RESTARTS.incr();
                thread::sleep(backoff.next_delay());
            }
        }
    }
}

fn accept_loop<F>(shared: &Arc<Shared>, accept: &mut F)
where
    F: FnMut() -> io::Result<Conn>,
{
    while shared.state() == RUNNING {
        match accept() {
            Ok(conn) => {
                let ordinal = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                // Accept-path fault class: panic *before* the connection is
                // handed to a worker, exercising the listener supervisor.
                // The connection drops un-served; the client sees a reset.
                if shared.plan.accept_fault(ordinal) {
                    drop(conn);
                    aprof_faults::injected_panic(format!(
                        "injected panic in accept loop at connection {ordinal}"
                    ));
                }
                let shared = Arc::clone(shared);
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || {
                    // Contain both injected and genuine worker panics: one
                    // bad connection must not take the daemon down. Panics
                    // that escape this far were not attributable to a
                    // submitting tenant (those are caught — and settled —
                    // inside `handle_submit`), but they still count as
                    // supervised worker deaths.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        handle_conn(&shared, conn, ordinal);
                    }));
                    if outcome.is_err() {
                        counters::SERVE_SUPERVISOR_WORKER_PANICS.incr();
                    }
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_conn(shared: &Shared, mut conn: Conn, ordinal: u64) {
    counters::SERVE_CONNS_ACCEPTED.incr();
    let _ = conn.set_read_timeout(READ_TIMEOUT);
    let _ = conn.set_write_timeout(shared.cfg.write_timeout);
    let request = match protocol::read_line(&mut conn).and_then(|l| protocol::parse_request(&l)) {
        Ok(req) => req,
        Err(e) => {
            let _ = writeln!(conn, "ERR {e}");
            return;
        }
    };
    // Fault plan: the connection worker is the injection point for the
    // delay/panic classes (keyed by connection ordinal, first attempt).
    // Submissions re-draw the same decision inside their supervised
    // region so the panic is caught, attributed to the tenant, and
    // answered with an `ERR`; panics on query connections unwind to the
    // spawn-side catch instead.
    match shared.plan.worker_fault(ordinal, 1) {
        Some(WorkerFault::Panic) if !matches!(request, Request::Submit { .. }) => {
            aprof_faults::injected_panic(format!("injected panic in connection {ordinal}"));
        }
        Some(WorkerFault::Delay(d)) => thread::sleep(d),
        _ => {}
    }
    match request {
        Request::Submit { tenant, stream } => {
            handle_submit(shared, conn, &tenant, &stream, ordinal);
        }
        Request::Ping => {
            let _ = writeln!(conn, "OK pong");
        }
        Request::Tenants => {
            let _ = protocol::write_body(&mut conn, &tenants_text(shared));
        }
        Request::Profile { tenant } => match shared.registry.aggregate(&tenant) {
            Some(report) => {
                let _ = protocol::write_body(&mut conn, &report.to_canonical_text());
            }
            None => {
                let _ = writeln!(conn, "ERR unknown tenant {tenant:?}");
            }
        },
        Request::Report { tenant } => match shared.registry.aggregate(&tenant) {
            Some(report) => {
                let _ = protocol::write_body(&mut conn, &html_report(&tenant, &report));
            }
            None => {
                let _ = writeln!(conn, "ERR unknown tenant {tenant:?}");
            }
        },
        Request::Obs => {
            let _ = protocol::write_body(&mut conn, &aprof_obs::snapshot().to_json());
        }
        Request::Shutdown { now } => {
            shared.request_shutdown(now);
            let _ = writeln!(conn, "OK {}", if now { "stopping" } else { "draining" });
        }
        Request::Http { path } => handle_http(shared, conn, &path),
    }
}

fn tenants_text(shared: &Shared) -> String {
    let mut out = String::new();
    for t in shared.registry.summaries() {
        let _ = writeln!(
            out,
            "{} streams={} events={} spooled_cells={} in_flight={}",
            t.tenant, t.streams, t.events, t.spooled_cells, t.in_flight
        );
    }
    out
}

fn html_report(tenant: &str, report: &ProfileReport) -> String {
    let snap = aprof_obs::snapshot();
    let title = format!("tenant {tenant}");
    // Tenant profiles aggregate wire streams with no guest program in
    // hand, so the static-bound column stays empty.
    render_report(&ReportInputs { report, title: &title, obs: Some(&snap), top: 8, bounds: None })
}

fn handle_http(shared: &Shared, mut conn: Conn, path: &str) {
    // Politely consume the request headers before answering.
    for _ in 0..64 {
        match protocol::read_line(&mut conn) {
            Ok(line) if line.is_empty() => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let not_found = |mut conn: Conn| {
        let _ = protocol::write_http(&mut conn, "404 Not Found", "text/plain", "not found\n");
    };
    match path {
        "/healthz" => {
            let _ = protocol::write_http(&mut conn, "200 OK", "text/plain", "ok\n");
        }
        "/obs.json" => {
            let _ = protocol::write_http(
                &mut conn,
                "200 OK",
                "application/json",
                &aprof_obs::snapshot().to_json(),
            );
        }
        "/tenants" => {
            let _ = protocol::write_http(&mut conn, "200 OK", "text/plain", &tenants_text(shared));
        }
        _ => {
            if let Some(tenant) = path.strip_prefix("/profile/") {
                match shared.registry.aggregate(tenant) {
                    Some(report) => {
                        let _ = protocol::write_http(
                            &mut conn,
                            "200 OK",
                            "text/plain",
                            &report.to_canonical_text(),
                        );
                    }
                    None => not_found(conn),
                }
            } else if let Some(tenant) = path.strip_prefix("/report/") {
                match shared.registry.aggregate(tenant) {
                    Some(report) => {
                        let _ = protocol::write_http(
                            &mut conn,
                            "200 OK",
                            "text/html",
                            &html_report(tenant, &report),
                        );
                    }
                    None => not_found(conn),
                }
            } else {
                not_found(conn);
            }
        }
    }
}

/// A `Read` adapter that copies every byte it yields into the spool sink —
/// the stream is decoded and made durable in a single pass. It also carries
/// the stream's overall deadline: per-read socket timeouts bound each
/// *silent* stall, but a byte-dribbling slow-loris peer resets that clock
/// on every byte, so the tee enforces a wall-clock budget for the whole
/// stream and evicts the connection once it is spent.
struct Tee<'a, W: Write> {
    conn: &'a mut Conn,
    spool: W,
    copied: u64,
    deadline: Instant,
}

impl<W: Write> Read for Tee<'_, W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "stream deadline exceeded",
            ));
        }
        let n = self.conn.read(buf)?;
        if n > 0 {
            self.spool.write_all(&buf[..n])?;
            self.copied += n as u64;
        }
        Ok(n)
    }
}

/// Wraps the wire decoder with the tenant's event budget: the stream is
/// refused (mid-flight) as soon as it would push the tenant past its
/// `max_instructions` quota.
struct Metered<R: Read> {
    reader: WireReader<R>,
    budget: u64,
    seen: u64,
}

impl<R: Read> Iterator for Metered<R> {
    type Item = Result<(ThreadId, Event), ServeError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.reader.next()? {
            Ok(item) => {
                self.seen += 1;
                if self.seen > self.budget {
                    counters::SERVE_QUOTA_TRIPS.incr();
                    return Some(Err(ServeError::Quota(format!(
                        "stream exceeds the tenant's remaining event budget ({})",
                        self.budget
                    ))));
                }
                Some(Ok(item))
            }
            Err(e) => Some(Err(ServeError::Wire(e))),
        }
    }
}

/// Deterministic admission-time load shedding. Checked before any work is
/// done for the stream, so a shed costs the daemon one request-line parse
/// and one `ERR busy retry-after <ms>` write.
fn shed_check(shared: &Shared, tenant: &str) -> Option<ServeError> {
    let shed = &shared.cfg.shed;
    let busy = ServeError::Busy { retry_after: shed.retry_after };
    if shared.active_conns.load(Ordering::SeqCst) > shed.max_active_conns {
        counters::SERVE_SHED_CONN_PRESSURE.incr();
        return Some(busy);
    }
    if shared.registry.total_spooled_cells() >= shed.spool_capacity_cells {
        counters::SERVE_SHED_SPOOL_PRESSURE.incr();
        return Some(busy);
    }
    let pct = u64::from(shed.tenant_pressure_pct.min(100));
    if pct < 100 && shared.cfg.quota.max_instructions != u64::MAX {
        let used = shared.registry.tenant_events(tenant);
        if u128::from(used) * 100 >= u128::from(shared.cfg.quota.max_instructions) * u128::from(pct)
        {
            counters::SERVE_SHED_TENANT_PRESSURE.incr();
            return Some(busy);
        }
    }
    None
}

/// Maps a submission error to its breaker verdict: only failures that say
/// something about the *tenant's traces* (corrupt bytes, blown deadlines)
/// feed the circuit breaker; daemon-side trouble (I/O, quotas, pressure)
/// must not quarantine an innocent tenant.
fn breaker_verdict(e: &ServeError) -> Outcome {
    match e {
        ServeError::Wire(WireError::Io(_)) => Outcome::Indeterminate,
        ServeError::Wire(_) | ServeError::Deadline | ServeError::Protocol(_) => Outcome::Failure,
        _ => Outcome::Indeterminate,
    }
}

fn handle_submit(shared: &Shared, mut conn: Conn, tenant: &str, stream: &str, ordinal: u64) {
    if shared.state() != RUNNING {
        counters::SERVE_STREAMS_ABORTED.incr();
        let _ = writeln!(conn, "ERR {}", ServeError::Draining);
        return;
    }
    if let Some(e) = shed_check(shared, tenant) {
        counters::SERVE_STREAMS_ABORTED.incr();
        let _ = writeln!(conn, "ERR {e}");
        return;
    }
    if let Err(e) = shared.breakers.admit(tenant) {
        counters::SERVE_STREAMS_ABORTED.incr();
        let _ = writeln!(conn, "ERR {e}");
        return;
    }
    // From here on every path settles the breaker — an unsettled half-open
    // probe would wedge the tenant in quarantine.
    let run = catch_unwind(AssertUnwindSafe(|| {
        submit_supervised(shared, &mut conn, tenant, stream, ordinal)
    }));
    match run {
        Ok(outcome) => shared.breakers.settle(tenant, outcome),
        Err(_) => {
            // The worker died mid-submission. The `SlotGuard` released the
            // tenant's in-flight slot during unwinding; finish the cleanup,
            // attribute the poison to the tenant, and keep serving.
            counters::SERVE_SUPERVISOR_WORKER_PANICS.incr();
            counters::SERVE_STREAMS_ABORTED.incr();
            shared.spool.discard_part(tenant, stream);
            shared.breakers.settle(tenant, Outcome::Failure);
            let _ = writeln!(conn, "ERR internal: worker panicked (supervised); stream discarded");
        }
    }
}

/// The supervised body of one submission; the caller catches panics and
/// settles the returned breaker verdict.
fn submit_supervised(
    shared: &Shared,
    conn: &mut Conn,
    tenant: &str,
    stream: &str,
    ordinal: u64,
) -> Outcome {
    // Worker fault classes re-drawn here (same pure decision as
    // `handle_conn`) so an injected panic lands inside the supervised
    // region.
    match shared.plan.worker_fault(ordinal, 1) {
        Some(WorkerFault::Panic) => {
            aprof_faults::injected_panic(format!("injected panic in connection {ordinal}"));
        }
        Some(WorkerFault::Delay(d)) => thread::sleep(d),
        None => {}
    }
    let admission = match shared.registry.admit(tenant, stream) {
        Ok(a) => a,
        Err(e) => {
            counters::SERVE_STREAMS_ABORTED.incr();
            // `trap = false` selects hard disconnects over graceful
            // refusals (the VM limits' abort-vs-trap distinction).
            if shared.cfg.quota.trap || !matches!(e, ServeError::Quota(_)) {
                let _ = writeln!(conn, "ERR {e}");
            }
            return breaker_verdict(&e);
        }
    };
    let slot = match admission {
        Admission::Duplicate => {
            // Drain the body so the peer's writes don't die on a reset,
            // then acknowledge idempotently.
            let _ = io::copy(conn, &mut io::sink());
            let _ = writeln!(conn, "OK events=0 chunks=0 duplicate=1");
            return Outcome::Success;
        }
        Admission::Slot(slot) => slot,
    };

    let started = Instant::now();
    let outcome = match ingest(shared, conn, tenant, stream, slot.events_budget(), started) {
        Ok((events, chunks)) => {
            counters::SERVE_CHUNKS_AGGREGATED.add(u64::from(chunks));
            let _ = writeln!(conn, "OK events={events} chunks={chunks}");
            Outcome::Success
        }
        Err(e) => {
            shared.spool.discard_part(tenant, stream);
            counters::SERVE_STREAMS_ABORTED.incr();
            // A stream that errored after its wall-clock budget was a
            // slow-loris eviction, whatever the proximate error: the tee's
            // timeout, a read timeout, or a decode error on a half-starved
            // buffer.
            let e = if started.elapsed() >= shared.cfg.stream_deadline {
                counters::SERVE_SHED_SLOW_EVICTIONS.incr();
                ServeError::Deadline
            } else {
                e
            };
            if shared.cfg.quota.trap || !matches!(e, ServeError::Quota(_)) {
                let _ = writeln!(conn, "ERR {e}");
            }
            breaker_verdict(&e)
        }
    };
    drop(slot);
    outcome
}

/// The ingest pipeline for one admitted stream. On success the stream is
/// durable, aggregated and ready to acknowledge; on error the caller
/// discards the `.part` and reports.
fn ingest(
    shared: &Shared,
    conn: &mut Conn,
    tenant: &str,
    stream: &str,
    events_budget: u64,
    started: Instant,
) -> Result<(u64, u32), ServeError> {
    let part = shared.spool.create_part(tenant, stream)?;
    let mut tee = Tee {
        conn,
        spool: BufWriter::new(shared.plan.wrap_writer(part)),
        copied: 0,
        deadline: started + shared.cfg.stream_deadline,
    };
    let mut profiler = TrmsProfiler::new();
    let (events, chunks, names) = {
        let reader = WireReader::new(BufReader::with_capacity(SOCKET_BUF, &mut tee))?.strict();
        let mut metered = Metered { reader, budget: events_budget, seen: 0 };
        let events = profiler.consume_stream(&mut metered)?;
        if metered.reader.index().is_none() {
            return Err(ServeError::Wire(WireError::UnexpectedEof {
                context: "stream ended without a validated index",
            }));
        }
        let chunks = metered.reader.stats().chunks;
        (events, chunks, metered.reader.routines().clone())
    };
    let Tee { spool, copied, .. } = tee;
    let part = spool
        .into_inner()
        .map_err(|e| ServeError::Io(io::Error::other(e.to_string())))?
        .into_inner();
    // Fsync fault class: a full disk surfaces here as well as on writes.
    if let Some(e) = shared.plan.sync_fault(name_ordinal(tenant, stream)) {
        return Err(e.into());
    }
    part.sync_data()?;
    drop(part);

    let report = profiler.into_report(&names);
    let cells = bytes_to_cells(copied);
    // In-memory commit first (it can refuse on the spool-cells quota),
    // durable rename second, ack last — see `spool` module docs for why
    // this ordering keeps acknowledged data loss at zero.
    shared.registry.commit(tenant, stream, report, events, cells)?;
    if let Err(e) = shared.spool.commit(tenant, stream) {
        shared.registry.evict(tenant, stream, events, cells);
        return Err(e);
    }
    Ok((events, chunks))
}
