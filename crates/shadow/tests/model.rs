//! Property tests: ShadowMemory behaves like a `BTreeMap<u64, T>` with
//! default-on-missing semantics.

use aprof_shadow::ShadowMemory;
use aprof_trace::Addr;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn matches_map_model(ops in prop::collection::vec(
        (any::<u64>(), prop::option::of(any::<u32>())), 1..200)) {
        let mut shadow: ShadowMemory<u32> = ShadowMemory::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for (addr, write) in ops {
            match write {
                Some(v) => {
                    shadow.set(Addr::new(addr), v);
                    model.insert(addr, v);
                }
                None => {
                    let expect = model.get(&addr).copied().unwrap_or_default();
                    prop_assert_eq!(shadow.get(Addr::new(addr)), expect);
                }
            }
        }
        for (&addr, &v) in &model {
            prop_assert_eq!(shadow.get(Addr::new(addr)), v);
        }
    }

    #[test]
    fn for_each_mut_sees_every_nondefault(values in prop::collection::btree_map(
        0u64..1_000_000, 1u32..u32::MAX, 1..100)) {
        let mut shadow: ShadowMemory<u32> = ShadowMemory::new();
        for (&a, &v) in &values {
            shadow.set(Addr::new(a), v);
        }
        let mut seen = BTreeMap::new();
        shadow.for_each_mut(|a, v| {
            if *v != 0 {
                seen.insert(a.raw(), *v);
            }
        });
        prop_assert_eq!(seen, values);
    }
}
