//! Arena-paged shadow memories.
//!
//! Dynamic-analysis tools keep *shadow state* for every guest memory cell —
//! the profilers in `aprof-core` store access timestamps, the memcheck
//! analog in `aprof-tools` stores validity bits. Following §5 of the paper
//! (and memcheck itself), shadow state is sparse: only pages containing
//! cells that were actually accessed are allocated. Here the pages live in
//! one flat arena behind a compact open-addressing page directory — see
//! [`ShadowMemory`] for the layout — so the resident shadow size stays
//! proportional to the memory actually touched rather than the address
//! range spanned. With embarrassingly parallel workloads the accessed
//! address space is roughly partitioned among threads, so the total size of
//! all thread-specific shadow memories likewise stays proportional to the
//! memory touched rather than `threads × memory` (§6 confirms this
//! experimentally).
//!
//! # Example
//!
//! ```
//! use aprof_shadow::ShadowMemory;
//! use aprof_trace::Addr;
//!
//! let mut shadow: ShadowMemory<u32> = ShadowMemory::new();
//! assert_eq!(shadow.get(Addr::new(42)), 0); // default, no allocation
//! shadow.set(Addr::new(42), 7);
//! assert_eq!(shadow.get(Addr::new(42)), 7);
//! assert_eq!(shadow.stats().pages, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod memory;

pub use memory::{ShadowMemory, ShadowStats, PAGE_CELLS};
