//! The three-level lookup table.

use aprof_trace::Addr;
use std::collections::BTreeMap;

/// Number of shadow cells stored in one chunk (the innermost level).
///
/// `2^12 = 4096` cells per chunk. The paper shadows 64 KB of byte-addressed
/// space per chunk; our guest machine is word-addressed, so a 4096-word
/// chunk covers an equivalent 32 KB of guest data while keeping allocation
/// granularity fine enough for scattered heaps.
pub const CELLS_PER_CHUNK: usize = 1 << 12;

/// Number of chunk slots in one secondary table (the middle level).
///
/// `2^14 = 16384` chunk pointers, exactly the paper's "each [secondary
/// table] covering 1 GB of address space by indexing 16 K chunks".
pub const CHUNKS_PER_SECONDARY: usize = 1 << 14;

const CHUNK_BITS: u32 = CELLS_PER_CHUNK.trailing_zeros();
const SECONDARY_BITS: u32 = CHUNKS_PER_SECONDARY.trailing_zeros();

type Chunk<T> = Box<[T; CELLS_PER_CHUNK]>;

struct Secondary<T> {
    chunks: Vec<Option<Chunk<T>>>,
    allocated: usize,
}

impl<T: Copy + Default> Secondary<T> {
    fn new() -> Self {
        let mut chunks = Vec::new();
        chunks.resize_with(CHUNKS_PER_SECONDARY, || None);
        Secondary { chunks, allocated: 0 }
    }
}

impl<T> std::fmt::Debug for Secondary<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Secondary").field("allocated", &self.allocated).finish()
    }
}

/// A sparse map from guest addresses to shadow values, organized as a
/// three-level lookup table (§5 of the paper).
///
/// * **Primary** level: an ordered map from high address bits to secondary
///   tables (the paper uses a fixed 2048-entry array; a map keeps the full
///   64-bit guest address space representable without a fixed ceiling).
/// * **Secondary** level: [`CHUNKS_PER_SECONDARY`] lazily-allocated chunk
///   slots.
/// * **Chunk** level: [`CELLS_PER_CHUNK`] shadow values.
///
/// Reading a never-written cell returns `T::default()` without allocating;
/// only writes allocate. [`ShadowStats`] reports how much shadow state is
/// resident, which the experiment harness uses for the paper's space-overhead
/// numbers (Table 1, Figure 14b).
///
/// # Example
///
/// ```
/// use aprof_shadow::ShadowMemory;
/// use aprof_trace::Addr;
/// let mut s: ShadowMemory<u64> = ShadowMemory::new();
/// s.set(Addr::new(0), 1);
/// s.set(Addr::new(u64::MAX / 2), 2); // far apart: a second chunk
/// assert_eq!(s.stats().chunks, 2);
/// assert_eq!(s.get(Addr::new(0)), 1);
/// ```
pub struct ShadowMemory<T> {
    primary: BTreeMap<u64, Secondary<T>>,
}

impl<T: Copy + Default> ShadowMemory<T> {
    /// Creates an empty shadow memory; nothing is allocated until the first
    /// [`set`](Self::set).
    pub fn new() -> Self {
        ShadowMemory { primary: BTreeMap::new() }
    }

    #[inline]
    fn split(addr: Addr) -> (u64, usize, usize) {
        let raw = addr.raw();
        let cell = (raw & (CELLS_PER_CHUNK as u64 - 1)) as usize;
        let chunk = ((raw >> CHUNK_BITS) & (CHUNKS_PER_SECONDARY as u64 - 1)) as usize;
        let secondary = raw >> (CHUNK_BITS + SECONDARY_BITS);
        (secondary, chunk, cell)
    }

    /// Returns the shadow value of `addr`, or `T::default()` if the cell was
    /// never written. Never allocates.
    #[inline]
    pub fn get(&self, addr: Addr) -> T {
        let (s, c, cell) = Self::split(addr);
        match self.primary.get(&s) {
            Some(sec) => match &sec.chunks[c] {
                Some(chunk) => chunk[cell],
                None => T::default(),
            },
            None => T::default(),
        }
    }

    /// Sets the shadow value of `addr`, allocating the covering secondary
    /// table and chunk on first touch.
    #[inline]
    pub fn set(&mut self, addr: Addr, value: T) {
        *self.slot(addr) = value;
    }

    /// Reads the shadow value of `addr` and replaces it with `value` in one
    /// table traversal, returning the previous value (or `T::default()` for
    /// a never-written cell).
    ///
    /// Equivalent to [`get`](Self::get) followed by [`set`](Self::set), but
    /// walks the three-level table once instead of twice — the dominant
    /// operation on the profiler read path, which always looks up the old
    /// read timestamp and then stores the current one.
    #[inline]
    pub fn get_set(&mut self, addr: Addr, value: T) -> T {
        let cell = self.slot(addr);
        std::mem::replace(cell, value)
    }

    /// Returns a mutable reference to the shadow cell of `addr`, allocating
    /// as needed (the cell starts at `T::default()`).
    #[inline]
    pub fn slot(&mut self, addr: Addr) -> &mut T {
        let (s, c, cell) = Self::split(addr);
        let sec = self.primary.entry(s).or_insert_with(|| {
            aprof_obs::counters::SHADOW_SECONDARY_ALLOCS.incr();
            Secondary::new()
        });
        let chunk = sec.chunks[c].get_or_insert_with(|| {
            sec.allocated += 1;
            aprof_obs::counters::SHADOW_CHUNK_ALLOCS.incr();
            Box::new([T::default(); CELLS_PER_CHUNK])
        });
        &mut chunk[cell]
    }

    /// Applies `f` to every *allocated* shadow cell.
    ///
    /// Cells in allocated chunks that still hold `T::default()` are visited
    /// too (callers that use a "never" sentinel equal to the default value
    /// should skip them in `f`). Used by the timestamp-renumbering procedure
    /// of §4.4.
    pub fn for_each_mut<F: FnMut(Addr, &mut T)>(&mut self, mut f: F) {
        for (&s, sec) in self.primary.iter_mut() {
            for (ci, chunk) in sec.chunks.iter_mut().enumerate() {
                if let Some(chunk) = chunk {
                    let base = (s << (CHUNK_BITS + SECONDARY_BITS)) | ((ci as u64) << CHUNK_BITS);
                    for (offset, v) in chunk.iter_mut().enumerate() {
                        f(Addr::new(base | offset as u64), v);
                    }
                }
            }
        }
    }

    /// Resident-size statistics for space-overhead accounting.
    pub fn stats(&self) -> ShadowStats {
        let chunks: usize = self.primary.values().map(|s| s.allocated).sum();
        let secondaries = self.primary.len();
        let bytes = secondaries * CHUNKS_PER_SECONDARY * std::mem::size_of::<usize>()
            + chunks * CELLS_PER_CHUNK * std::mem::size_of::<T>();
        ShadowStats { secondaries, chunks, bytes }
    }

    /// Drops all shadow state, returning the memory to its initial state.
    pub fn clear(&mut self) {
        self.primary.clear();
    }
}

impl<T: Copy + Default> Default for ShadowMemory<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ShadowMemory<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("secondaries", &self.primary.len())
            .finish_non_exhaustive()
    }
}

/// Resident-size statistics of a [`ShadowMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShadowStats {
    /// Allocated secondary tables.
    pub secondaries: usize,
    /// Allocated chunks.
    pub chunks: usize,
    /// Approximate resident bytes (table slots + chunk payloads).
    pub bytes: usize,
}

impl ShadowStats {
    /// Component-wise sum of two statistics, for aggregating the shadow
    /// memories of several threads.
    pub fn merged(self, other: ShadowStats) -> ShadowStats {
        ShadowStats {
            secondaries: self.secondaries + other.secondaries,
            chunks: self.chunks + other.chunks,
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reads_do_not_allocate() {
        let s: ShadowMemory<u32> = ShadowMemory::new();
        assert_eq!(s.get(Addr::new(123)), 0);
        assert_eq!(s.stats(), ShadowStats::default());
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        for i in 0..1000u64 {
            s.set(Addr::new(i * 37), (i as u32) + 1);
        }
        for i in 0..1000u64 {
            assert_eq!(s.get(Addr::new(i * 37)), (i as u32) + 1);
        }
    }

    #[test]
    fn chunk_boundaries() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let edge = CELLS_PER_CHUNK as u64;
        s.set(Addr::new(edge - 1), 1);
        s.set(Addr::new(edge), 2);
        assert_eq!(s.get(Addr::new(edge - 1)), 1);
        assert_eq!(s.get(Addr::new(edge)), 2);
        assert_eq!(s.stats().chunks, 2);
    }

    #[test]
    fn secondary_boundaries() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let span = (CELLS_PER_CHUNK * CHUNKS_PER_SECONDARY) as u64;
        s.set(Addr::new(span - 1), 1);
        s.set(Addr::new(span), 2);
        assert_eq!(s.stats().secondaries, 2);
        assert_eq!(s.get(Addr::new(span - 1)), 1);
        assert_eq!(s.get(Addr::new(span)), 2);
    }

    #[test]
    fn slot_allows_in_place_updates() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        *s.slot(Addr::new(5)) += 3;
        *s.slot(Addr::new(5)) += 4;
        assert_eq!(s.get(Addr::new(5)), 7);
    }

    #[test]
    fn get_set_returns_previous_value() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        assert_eq!(s.get_set(Addr::new(9), 5), 0); // never-written ⇒ default
        assert_eq!(s.get_set(Addr::new(9), 6), 5);
        assert_eq!(s.get(Addr::new(9)), 6);
    }

    #[test]
    fn for_each_mut_visits_written_cells() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        s.set(Addr::new(1), 10);
        s.set(Addr::new((CELLS_PER_CHUNK * 2) as u64), 20);
        let mut seen = Vec::new();
        s.for_each_mut(|a, v| {
            if *v != 0 {
                seen.push((a.raw(), *v));
                *v += 1;
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 10), ((CELLS_PER_CHUNK * 2) as u64, 20)]);
        assert_eq!(s.get(Addr::new(1)), 11);
    }

    #[test]
    fn high_addresses_work() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        let a = Addr::new(u64::MAX);
        s.set(a, 9);
        assert_eq!(s.get(a), 9);
    }

    #[test]
    fn clear_resets() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        s.set(Addr::new(0), 1);
        s.clear();
        assert_eq!(s.get(Addr::new(0)), 0);
        assert_eq!(s.stats().chunks, 0);
    }

    #[test]
    fn stats_merge() {
        let a = ShadowStats { secondaries: 1, chunks: 2, bytes: 30 };
        let b = ShadowStats { secondaries: 3, chunks: 4, bytes: 50 };
        assert_eq!(a.merged(b), ShadowStats { secondaries: 4, chunks: 6, bytes: 80 });
    }
}
