//! The arena-paged shadow table.

use aprof_trace::Addr;

/// Number of shadow cells stored in one page (the allocation granule).
///
/// `2^8 = 256` cells per page. The original three-level design shadowed in
/// 4096-cell chunks behind 16 K-slot secondary pointer tables, which cost
/// 128 KiB of directory plus 32 KiB per chunk before a single useful cell —
/// a measured 16–21× space factor on small guests. A 256-cell page (2 KiB
/// of `u64` timestamps, one page-granular arena slab) keeps the resident
/// set proportional to the cells actually touched while staying large
/// enough that a streaming access pattern hits the same page for 256
/// consecutive addresses.
pub const PAGE_CELLS: usize = 1 << 8;

const PAGE_BITS: u32 = PAGE_CELLS.trailing_zeros();
const PAGE_MASK: u64 = PAGE_CELLS as u64 - 1;

/// Directory key that can never name a real page: page keys are
/// `addr >> PAGE_BITS`, which is at most `2^56 - 1`.
const EMPTY_KEY: u64 = u64::MAX;

/// Fibonacci-hash multiplier (2^64 / φ), spreading the sequential page
/// keys that dense guest heaps produce across the probe space.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A sparse map from guest addresses to shadow values, organized as a
/// page-granular arena behind an open-addressing page directory.
///
/// Layout (the explicit raw-capacity idiom):
///
/// * **Arena**: one flat `Vec<T>` holding every allocated page
///   contiguously — page `p` owns `cells[p * PAGE_CELLS ..][..PAGE_CELLS]`.
///   The arena grows by a bounded factor (×1.5, page-rounded), so at most
///   a third of its capacity is ever dead space, and page indexes are
///   stable for the life of the table.
/// * **Directory**: a power-of-two open-addressing hash table mapping page
///   key (`addr >> 8`) to page index, probed linearly from a Fibonacci
///   hash. A one-entry *last-page cache* short-circuits the directory
///   entirely for the consecutive-address runs the profilers produce.
/// * **Bases**: per-page first-address-of-page, in allocation order —
///   the iteration and rehash backbone.
///
/// Reading a never-written cell returns `T::default()` without allocating;
/// only writes allocate. [`ShadowStats`] reports how much shadow state is
/// resident, which the experiment harness uses for the paper's
/// space-overhead numbers (Table 1, Figure 14b).
///
/// # Example
///
/// ```
/// use aprof_shadow::ShadowMemory;
/// use aprof_trace::Addr;
/// let mut s: ShadowMemory<u64> = ShadowMemory::new();
/// s.set(Addr::new(0), 1);
/// s.set(Addr::new(u64::MAX / 2), 2); // far apart: a second page
/// assert_eq!(s.stats().pages, 2);
/// assert_eq!(s.get(Addr::new(0)), 1);
/// ```
pub struct ShadowMemory<T> {
    /// Page arena; page `p` is `cells[p * PAGE_CELLS ..][..PAGE_CELLS]`.
    cells: Vec<T>,
    /// Directory keys, `EMPTY_KEY` marking vacant slots. Power-of-two
    /// length; empty until the first write.
    keys: Vec<u64>,
    /// Directory values (page indexes), parallel to `keys`.
    slots: Vec<u32>,
    /// Page key of each allocated page, indexed by page number.
    bases: Vec<u64>,
    /// Last-page cache: the page key and page index of the most recent
    /// write-path access (`EMPTY_KEY` when cold).
    last_key: u64,
    last_page: u32,
}

impl<T: Copy + Default> ShadowMemory<T> {
    /// Creates an empty shadow memory; nothing is allocated until the first
    /// [`set`](Self::set).
    pub fn new() -> Self {
        ShadowMemory {
            cells: Vec::new(),
            keys: Vec::new(),
            slots: Vec::new(),
            bases: Vec::new(),
            last_key: EMPTY_KEY,
            last_page: 0,
        }
    }

    #[inline]
    fn split(addr: Addr) -> (u64, usize) {
        (addr.raw() >> PAGE_BITS, (addr.raw() & PAGE_MASK) as usize)
    }

    /// Home slot of `key` in a directory of `mask + 1` slots.
    #[inline]
    fn home(key: u64, mask: usize) -> usize {
        (key.wrapping_mul(HASH_MUL) >> 32) as usize & mask
    }

    /// Directory lookup; `None` when the page was never allocated.
    #[inline]
    fn find(&self, key: u64) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::home(key, mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.slots[i]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns the shadow value of `addr`, or `T::default()` if the cell
    /// was never written. Never allocates.
    #[inline]
    pub fn get(&self, addr: Addr) -> T {
        let (key, off) = Self::split(addr);
        let page = if key == self.last_key {
            self.last_page
        } else {
            match self.find(key) {
                Some(p) => p,
                None => return T::default(),
            }
        };
        self.cells[page as usize * PAGE_CELLS + off]
    }

    /// Sets the shadow value of `addr`, allocating the covering page on
    /// first touch.
    #[inline]
    pub fn set(&mut self, addr: Addr, value: T) {
        *self.slot(addr) = value;
    }

    /// Reads the shadow value of `addr` and replaces it with `value` in one
    /// lookup, returning the previous value (or `T::default()` for a
    /// never-written cell).
    ///
    /// Equivalent to [`get`](Self::get) followed by [`set`](Self::set) —
    /// the dominant operation on the profiler read path, which always looks
    /// up the old read timestamp and then stores the current one.
    #[inline]
    pub fn get_set(&mut self, addr: Addr, value: T) -> T {
        let cell = self.slot(addr);
        std::mem::replace(cell, value)
    }

    /// Returns a mutable reference to the shadow cell of `addr`, allocating
    /// as needed (the cell starts at `T::default()`).
    #[inline]
    pub fn slot(&mut self, addr: Addr) -> &mut T {
        let (key, off) = Self::split(addr);
        let page = if key == self.last_key { self.last_page } else { self.page_for(key) };
        &mut self.cells[page as usize * PAGE_CELLS + off]
    }

    /// Resolves (or allocates) the page of `key` and warms the last-page
    /// cache with it. Out of line: the hot paths inline only the cache hit.
    #[cold]
    fn page_for(&mut self, key: u64) -> u32 {
        let page = match self.find(key) {
            Some(p) => p,
            None => self.alloc_page(key),
        };
        self.last_key = key;
        self.last_page = page;
        page
    }

    /// Allocates a fresh zeroed page for `key` and enters it into the
    /// directory, growing directory and arena as needed.
    fn alloc_page(&mut self, key: u64) -> u32 {
        // Keep the directory at most ¾ full (counting the new entry).
        if (self.bases.len() + 1) * 4 > self.keys.len() * 3 {
            self.grow_directory();
        }
        let page = self.bases.len() as u32;
        self.bases.push(key);
        // Bounded-waste arena growth: ×1.5, rounded up to whole pages,
        // instead of Vec's doubling — shadow residency is a measured
        // quantity, so dead capacity is kept under a third.
        if self.cells.len() + PAGE_CELLS > self.cells.capacity() {
            let want = self.cells.len() + PAGE_CELLS;
            let grown = (self.cells.capacity() + self.cells.capacity() / 2)
                .next_multiple_of(PAGE_CELLS);
            self.cells.reserve_exact(want.max(grown) - self.cells.len());
        }
        self.cells.resize(self.cells.len() + PAGE_CELLS, T::default());
        let mask = self.keys.len() - 1;
        let mut i = Self::home(key, mask);
        while self.keys[i] != EMPTY_KEY {
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.slots[i] = page;
        aprof_obs::counters::SHADOW_CHUNK_ALLOCS.incr();
        page
    }

    /// Doubles the directory (from a 4-slot floor) and rehashes every page.
    fn grow_directory(&mut self) {
        let cap = (self.keys.len() * 2).max(4);
        aprof_obs::counters::SHADOW_SECONDARY_ALLOCS.incr();
        self.keys.clear();
        self.keys.resize(cap, EMPTY_KEY);
        self.slots.clear();
        self.slots.resize(cap, 0);
        let mask = cap - 1;
        for (page, &key) in self.bases.iter().enumerate() {
            let mut i = Self::home(key, mask);
            while self.keys[i] != EMPTY_KEY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slots[i] = page as u32;
        }
    }

    /// Applies `f` to every *allocated* shadow cell, in ascending address
    /// order.
    ///
    /// Cells in allocated pages that still hold `T::default()` are visited
    /// too (callers that use a "never" sentinel equal to the default value
    /// should skip them in `f`). Used by the timestamp-renumbering
    /// procedure of §4.4.
    pub fn for_each_mut<F: FnMut(Addr, &mut T)>(&mut self, mut f: F) {
        let mut order: Vec<u32> = (0..self.bases.len() as u32).collect();
        order.sort_unstable_by_key(|&p| self.bases[p as usize]);
        for p in order {
            let base = self.bases[p as usize] << PAGE_BITS;
            let cells = &mut self.cells[p as usize * PAGE_CELLS..][..PAGE_CELLS];
            for (offset, v) in cells.iter_mut().enumerate() {
                f(Addr::new(base | offset as u64), v);
            }
        }
    }

    /// Resident-size statistics for space-overhead accounting.
    ///
    /// `bytes` counts *capacity*, not length — dead arena slack and vacant
    /// directory slots are real resident memory and are charged.
    pub fn stats(&self) -> ShadowStats {
        let bytes = self.cells.capacity() * std::mem::size_of::<T>()
            + self.keys.capacity() * std::mem::size_of::<u64>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
            + self.bases.capacity() * std::mem::size_of::<u64>();
        ShadowStats { pages: self.bases.len(), directory_slots: self.keys.len(), bytes }
    }

    /// Drops all shadow state, returning the memory to its initial
    /// (nothing-allocated) state.
    pub fn clear(&mut self) {
        *self = Self::new();
    }
}

impl<T: Copy + Default> Default for ShadowMemory<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ShadowMemory<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("pages", &self.bases.len())
            .finish_non_exhaustive()
    }
}

/// Resident-size statistics of a [`ShadowMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShadowStats {
    /// Allocated pages.
    pub pages: usize,
    /// Directory slots (occupied plus vacant).
    pub directory_slots: usize,
    /// Resident bytes (arena, directory and base-table capacity).
    pub bytes: usize,
}

impl ShadowStats {
    /// Component-wise sum of two statistics, for aggregating the shadow
    /// memories of several threads.
    pub fn merged(self, other: ShadowStats) -> ShadowStats {
        ShadowStats {
            pages: self.pages + other.pages,
            directory_slots: self.directory_slots + other.directory_slots,
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reads_do_not_allocate() {
        let s: ShadowMemory<u32> = ShadowMemory::new();
        assert_eq!(s.get(Addr::new(123)), 0);
        assert_eq!(s.stats(), ShadowStats::default());
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        for i in 0..1000u64 {
            s.set(Addr::new(i * 37), (i as u32) + 1);
        }
        for i in 0..1000u64 {
            assert_eq!(s.get(Addr::new(i * 37)), (i as u32) + 1);
        }
    }

    #[test]
    fn page_boundaries() {
        let mut s: ShadowMemory<u8> = ShadowMemory::new();
        let edge = PAGE_CELLS as u64;
        s.set(Addr::new(edge - 1), 1);
        s.set(Addr::new(edge), 2);
        assert_eq!(s.get(Addr::new(edge - 1)), 1);
        assert_eq!(s.get(Addr::new(edge)), 2);
        assert_eq!(s.stats().pages, 2);
    }

    #[test]
    fn slot_allows_in_place_updates() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        *s.slot(Addr::new(5)) += 3;
        *s.slot(Addr::new(5)) += 4;
        assert_eq!(s.get(Addr::new(5)), 7);
    }

    #[test]
    fn get_set_returns_previous_value() {
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        assert_eq!(s.get_set(Addr::new(9), 5), 0); // never-written ⇒ default
        assert_eq!(s.get_set(Addr::new(9), 6), 5);
        assert_eq!(s.get(Addr::new(9)), 6);
    }

    #[test]
    fn for_each_mut_visits_written_cells_in_address_order() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        s.set(Addr::new((PAGE_CELLS * 2) as u64), 20);
        s.set(Addr::new(1), 10);
        let mut seen = Vec::new();
        s.for_each_mut(|a, v| {
            if *v != 0 {
                seen.push((a.raw(), *v));
                *v += 1;
            }
        });
        assert_eq!(seen, vec![(1, 10), ((PAGE_CELLS * 2) as u64, 20)], "address order");
        assert_eq!(s.get(Addr::new(1)), 11);
    }

    #[test]
    fn high_addresses_work() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        let a = Addr::new(u64::MAX);
        s.set(a, 9);
        assert_eq!(s.get(a), 9);
    }

    #[test]
    fn clear_resets() {
        let mut s: ShadowMemory<u32> = ShadowMemory::new();
        s.set(Addr::new(0), 1);
        s.clear();
        assert_eq!(s.get(Addr::new(0)), 0);
        assert_eq!(s.stats().pages, 0);
        assert_eq!(s.stats().bytes, 0, "clear releases the arena");
    }

    #[test]
    fn directory_survives_many_scattered_pages() {
        // Forces many directory growths and rehashes; every page must stay
        // reachable and distinct afterwards.
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        for i in 0..4096u64 {
            s.set(Addr::new(i << PAGE_BITS), i + 1);
        }
        assert_eq!(s.stats().pages, 4096);
        for i in 0..4096u64 {
            assert_eq!(s.get(Addr::new(i << PAGE_BITS)), i + 1, "page {i}");
        }
    }

    #[test]
    fn dense_space_overhead_is_bounded() {
        // A dense working set must cost at most ~2 bytes of bookkeeping per
        // byte of payload: the ×1.5 arena growth plus the ¾-full directory.
        let mut s: ShadowMemory<u64> = ShadowMemory::new();
        let n = 100_000u64;
        for i in 0..n {
            s.set(Addr::new(i), i);
        }
        let payload = n as usize * std::mem::size_of::<u64>();
        let resident = s.stats().bytes;
        assert!(
            resident < payload * 2,
            "resident {resident} vs payload {payload}"
        );
    }

    #[test]
    fn stats_merge() {
        let a = ShadowStats { pages: 1, directory_slots: 2, bytes: 30 };
        let b = ShadowStats { pages: 3, directory_slots: 4, bytes: 50 };
        assert_eq!(a.merged(b), ShadowStats { pages: 4, directory_slots: 6, bytes: 80 });
    }
}
