//! Self-metrics for the profiler itself: counters, tracing spans, progress
//! heartbeats, and a machine-readable `obs.json` snapshot.
//!
//! The paper's methodology only pays off if the profiler's *own* overhead is
//! known, not estimated: this crate is the zero-dependency observability
//! layer the rest of the workspace reports into. It is wired through the VM
//! interpreter, the rms/trms profilers, the shadow memory, the wire
//! writer/reader and the parallel bench driver, and surfaces via the CLI's
//! `--observe` flag.
//!
//! Everything here is globally off by default and designed to cost nearly
//! nothing while disabled: counters are static [`AtomicU64`]s behind a single
//! relaxed [`AtomicBool`] check, and [`span!`] guards skip the clock read
//! entirely when disabled. Instrumentation sites count at *coarse*
//! granularity (per basic block, per chunk, per allocation — never per
//! memory event), which keeps the measured `--observe` overhead under the
//! 5% budget recorded in `BENCH_obs.json`.
//!
//! # Example
//!
//! ```
//! aprof_obs::reset();
//! aprof_obs::enable();
//!
//! // counters: named statics, updated from anywhere
//! aprof_obs::counters::VM_BLOCKS.add(3);
//!
//! // spans: RAII timing guards aggregated by name
//! {
//!     let _span = aprof_obs::span!("demo.work");
//!     // ... the timed region ...
//! }
//!
//! let snap = aprof_obs::snapshot();
//! assert_eq!(snap.counter("vm.blocks"), Some(3));
//! assert_eq!(snap.spans.iter().filter(|s| s.name == "demo.work").count(), 1);
//! assert!(snap.to_json().starts_with("{\n  \"version\": 4"));
//! aprof_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema version of the `obs.json` document emitted by [`Snapshot::to_json`].
///
/// v2 added the robustness counters: `wire.durable_syncs`,
/// `wire.recovered_*`, `driver.retries`/`driver.panics_caught`/
/// `driver.degraded_jobs`, `vm.resource_traps` and the `faults.*` family.
/// v3 added the service-daemon family: `serve.conns_accepted`,
/// `serve.active_tenants`, `serve.streams_committed`/`streams_aborted`,
/// `serve.chunks_aggregated`/`events_aggregated`,
/// `serve.backpressure_stalls`, `serve.quota_trips`,
/// `serve.recovered_streams` and `serve.drain_micros`.
/// v4 added the self-healing-service families: `serve.supervisor.*`
/// (worker panics contained, listener restarts), `serve.breaker.*`
/// (circuit-breaker trips/rejections/half-open probes/recoveries),
/// `serve.shed.*` (load-shedding by pressure cause plus slow-loris
/// evictions), `faults.net.*` (injected network faults) and
/// `faults.injected_commit_errors`.
pub const SCHEMA_VERSION: u32 = 4;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the observability layer on. Counters and spans start recording.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the observability layer off. Recorded values are kept (see
/// [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the observability layer is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A named monotonic counter. All counters live in [`counters`] as statics;
/// call sites update them directly and [`snapshot`] collects them all.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter. Only used for the statics in [`counters`].
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// The dotted taxonomy name, e.g. `"wire.chunks_flushed"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when observability is enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when observability is enabled; no-op otherwise.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Raises the counter to `v` if `v` is larger (a high-watermark gauge,
    /// used for e.g. peak queue depth). No-op while disabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if is_enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Overwrites the counter (a point-in-time gauge, used for values that
    /// are computed once at finish, e.g. shadow-memory footprints). No-op
    /// while disabled.
    #[inline]
    pub fn store(&self, v: u64) {
        if is_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (readable even while disabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The counter taxonomy. Names are dotted `layer.metric` pairs; the full
/// schema is specified in `DESIGN.md` §9.
pub mod counters {
    use super::Counter;

    /// Basic blocks interpreted by the guest VM.
    pub static VM_BLOCKS: Counter = Counter::new("vm.blocks");
    /// Events dispatched from the VM to the installed tool/sink.
    pub static VM_EVENTS: Counter = Counter::new("vm.events");
    /// Context switches performed by the VM's round-robin scheduler.
    pub static VM_THREAD_SWITCHES: Counter = Counter::new("vm.thread_switches");

    /// Routine activations (calls) seen by the rms/trms profilers.
    pub static PROF_ACTIVATIONS: Counter = Counter::new("prof.activations");
    /// §4.4 counter renumberings triggered by timestamp overflow.
    pub static PROF_RENUMBERINGS: Counter = Counter::new("prof.renumberings");
    /// Bytes held in profiler shadow memories at finish (gauge).
    pub static PROF_SHADOW_BYTES: Counter = Counter::new("prof.shadow_bytes");

    /// Secondary tables allocated by the three-level shadow memory.
    pub static SHADOW_SECONDARY_ALLOCS: Counter = Counter::new("shadow.secondary_allocs");
    /// Leaf chunks allocated by the three-level shadow memory.
    pub static SHADOW_CHUNK_ALLOCS: Counter = Counter::new("shadow.chunk_allocs");

    /// Chunks sealed and flushed by the wire writer.
    pub static WIRE_CHUNKS_FLUSHED: Counter = Counter::new("wire.chunks_flushed");
    /// Payload bytes written by the wire writer (pre-index/footer).
    pub static WIRE_BYTES_WRITTEN: Counter = Counter::new("wire.bytes_written");
    /// Events encoded by the wire writer.
    pub static WIRE_EVENTS_WRITTEN: Counter = Counter::new("wire.events_written");
    /// Chunks decoded successfully by the wire reader.
    pub static WIRE_CHUNKS_DECODED: Counter = Counter::new("wire.chunks_decoded");
    /// Events decoded by the wire reader.
    pub static WIRE_EVENTS_DECODED: Counter = Counter::new("wire.events_decoded");
    /// Damaged chunks skipped by the lenient wire reader (CRC/decode
    /// failures survived via skip-and-report).
    pub static WIRE_CHUNKS_SKIPPED: Counter = Counter::new("wire.chunks_skipped");
    /// Compressed bytes consumed by the wire reader.
    pub static WIRE_BYTES_READ: Counter = Counter::new("wire.bytes_read");

    /// Chunk flushes that also forced the sink to stable storage
    /// (`FlushPolicy::Durable`).
    pub static WIRE_DURABLE_SYNCS: Counter = Counter::new("wire.durable_syncs");
    /// CRC-valid chunks salvaged from a damaged capture by `recover`.
    pub static WIRE_RECOVERED_CHUNKS: Counter = Counter::new("wire.recovered_chunks");
    /// Events contained in salvaged chunks.
    pub static WIRE_RECOVERED_EVENTS: Counter = Counter::new("wire.recovered_events");

    /// Jobs completed by the parallel measurement driver.
    pub static DRIVER_JOBS: Counter = Counter::new("driver.jobs");
    /// Jobs a worker claimed beyond its first (work actually *stolen* from
    /// the shared cursor rather than handed out at spawn).
    pub static DRIVER_STEALS: Counter = Counter::new("driver.steals");
    /// Peak number of jobs still unclaimed when a worker went looking
    /// (high-watermark of the shared queue depth).
    pub static DRIVER_QUEUE_DEPTH_PEAK: Counter = Counter::new("driver.queue_depth_peak");
    /// Extra attempts spent by the hardened driver after a failed attempt.
    pub static DRIVER_RETRIES: Counter = Counter::new("driver.retries");
    /// Worker panics contained by the hardened driver's isolation boundary.
    pub static DRIVER_PANICS_CAUGHT: Counter = Counter::new("driver.panics_caught");
    /// Jobs that exhausted their retry budget and were reported degraded.
    pub static DRIVER_DEGRADED_JOBS: Counter = Counter::new("driver.degraded_jobs");

    /// Guest runs stopped gracefully by a VM resource limit (instruction or
    /// allocation budget).
    pub static VM_RESOURCE_TRAPS: Counter = Counter::new("vm.resource_traps");

    /// Sink I/O errors injected by the fault plan.
    pub static FAULTS_INJECTED_IO_ERRORS: Counter = Counter::new("faults.injected_io_errors");
    /// Short (partial) sink writes injected by the fault plan.
    pub static FAULTS_INJECTED_SHORT_WRITES: Counter =
        Counter::new("faults.injected_short_writes");
    /// Worker panics injected by the fault plan.
    pub static FAULTS_INJECTED_PANICS: Counter = Counter::new("faults.injected_panics");
    /// Worker delays injected by the fault plan.
    pub static FAULTS_INJECTED_DELAYS: Counter = Counter::new("faults.injected_delays");

    /// Connections accepted by the service daemon (unix + tcp).
    pub static SERVE_CONNS_ACCEPTED: Counter = Counter::new("serve.conns_accepted");
    /// Tenants currently holding at least one aggregated stream (gauge).
    pub static SERVE_ACTIVE_TENANTS: Counter = Counter::new("serve.active_tenants");
    /// Streams fully validated, spooled durably and folded into a tenant
    /// aggregate.
    pub static SERVE_STREAMS_COMMITTED: Counter = Counter::new("serve.streams_committed");
    /// Submissions rejected or broken off before commit (protocol errors,
    /// truncated streams, quota trips, injected faults).
    pub static SERVE_STREAMS_ABORTED: Counter = Counter::new("serve.streams_aborted");
    /// Wire chunks aggregated by the daemon across all tenants.
    pub static SERVE_CHUNKS_AGGREGATED: Counter = Counter::new("serve.chunks_aggregated");
    /// Events aggregated by the daemon across all tenants.
    pub static SERVE_EVENTS_AGGREGATED: Counter = Counter::new("serve.events_aggregated");
    /// Times a submission had to wait because its tenant was at the
    /// in-flight budget (one per stalled admission, not per retry).
    pub static SERVE_BACKPRESSURE_STALLS: Counter = Counter::new("serve.backpressure_stalls");
    /// Submissions refused because a per-tenant quota (event budget or
    /// spool cells) was exhausted.
    pub static SERVE_QUOTA_TRIPS: Counter = Counter::new("serve.quota_trips");
    /// Spooled streams replayed back into tenant aggregates on daemon
    /// restart.
    pub static SERVE_RECOVERED_STREAMS: Counter = Counter::new("serve.recovered_streams");
    /// Microseconds the last graceful drain took (gauge).
    pub static SERVE_DRAIN_MICROS: Counter = Counter::new("serve.drain_micros");

    /// Worker panics caught and contained by the connection supervisor
    /// (the daemon replied `ERR` and kept serving).
    pub static SERVE_SUPERVISOR_WORKER_PANICS: Counter =
        Counter::new("serve.supervisor.worker_panics");
    /// Listener (accept-loop) restarts performed by the supervisor after a
    /// panic, each preceded by jittered exponential backoff.
    pub static SERVE_SUPERVISOR_LISTENER_RESTARTS: Counter =
        Counter::new("serve.supervisor.listener_restarts");

    /// Per-tenant circuit breakers tripped open (N failures in the sliding
    /// window).
    pub static SERVE_BREAKER_TRIPS: Counter = Counter::new("serve.breaker.trips");
    /// Submissions refused `ERR quarantined` by an open breaker.
    pub static SERVE_BREAKER_REJECTIONS: Counter = Counter::new("serve.breaker.rejections");
    /// Probe submissions admitted through a half-open breaker.
    pub static SERVE_BREAKER_PROBES: Counter = Counter::new("serve.breaker.half_open_probes");
    /// Breakers closed again after a successful half-open probe.
    pub static SERVE_BREAKER_RECOVERIES: Counter = Counter::new("serve.breaker.recoveries");

    /// Submissions shed `ERR busy retry-after` because the daemon-wide
    /// active-connection ceiling was crossed.
    pub static SERVE_SHED_CONN_PRESSURE: Counter = Counter::new("serve.shed.conn_pressure");
    /// Submissions shed because spool headroom ran out.
    pub static SERVE_SHED_SPOOL_PRESSURE: Counter = Counter::new("serve.shed.spool_pressure");
    /// Submissions shed because the tenant neared its event budget.
    pub static SERVE_SHED_TENANT_PRESSURE: Counter = Counter::new("serve.shed.tenant_pressure");
    /// Streams evicted for blowing the per-stream overall deadline
    /// (slow-loris defence).
    pub static SERVE_SHED_SLOW_EVICTIONS: Counter = Counter::new("serve.shed.slow_evictions");

    /// Disk-full errors injected at the spool fsync/rename commit stages.
    pub static FAULTS_INJECTED_COMMIT_ERRORS: Counter =
        Counter::new("faults.injected_commit_errors");
    /// Connection resets injected by the network fault plan.
    pub static FAULTS_NET_RESETS: Counter = Counter::new("faults.net.conn_resets");
    /// Short reads injected by the network fault plan.
    pub static FAULTS_NET_SHORT_READS: Counter = Counter::new("faults.net.short_reads");
    /// Short writes injected by the network fault plan.
    pub static FAULTS_NET_SHORT_WRITES: Counter = Counter::new("faults.net.short_writes");
    /// Single-byte dribble stalls injected by the network fault plan.
    pub static FAULTS_NET_DRIBBLES: Counter = Counter::new("faults.net.dribbles");
    /// Garbage-byte writes injected by the network fault plan.
    pub static FAULTS_NET_GARBAGE: Counter = Counter::new("faults.net.garbage_writes");

    /// Every counter in the taxonomy, in report order.
    pub static ALL: &[&Counter] = &[
        &VM_BLOCKS,
        &VM_EVENTS,
        &VM_THREAD_SWITCHES,
        &VM_RESOURCE_TRAPS,
        &PROF_ACTIVATIONS,
        &PROF_RENUMBERINGS,
        &PROF_SHADOW_BYTES,
        &SHADOW_SECONDARY_ALLOCS,
        &SHADOW_CHUNK_ALLOCS,
        &WIRE_CHUNKS_FLUSHED,
        &WIRE_BYTES_WRITTEN,
        &WIRE_EVENTS_WRITTEN,
        &WIRE_CHUNKS_DECODED,
        &WIRE_EVENTS_DECODED,
        &WIRE_CHUNKS_SKIPPED,
        &WIRE_BYTES_READ,
        &WIRE_DURABLE_SYNCS,
        &WIRE_RECOVERED_CHUNKS,
        &WIRE_RECOVERED_EVENTS,
        &DRIVER_JOBS,
        &DRIVER_STEALS,
        &DRIVER_QUEUE_DEPTH_PEAK,
        &DRIVER_RETRIES,
        &DRIVER_PANICS_CAUGHT,
        &DRIVER_DEGRADED_JOBS,
        &FAULTS_INJECTED_IO_ERRORS,
        &FAULTS_INJECTED_SHORT_WRITES,
        &FAULTS_INJECTED_PANICS,
        &FAULTS_INJECTED_DELAYS,
        &FAULTS_INJECTED_COMMIT_ERRORS,
        &FAULTS_NET_RESETS,
        &FAULTS_NET_SHORT_READS,
        &FAULTS_NET_SHORT_WRITES,
        &FAULTS_NET_DRIBBLES,
        &FAULTS_NET_GARBAGE,
        &SERVE_CONNS_ACCEPTED,
        &SERVE_ACTIVE_TENANTS,
        &SERVE_STREAMS_COMMITTED,
        &SERVE_STREAMS_ABORTED,
        &SERVE_CHUNKS_AGGREGATED,
        &SERVE_EVENTS_AGGREGATED,
        &SERVE_BACKPRESSURE_STALLS,
        &SERVE_QUOTA_TRIPS,
        &SERVE_RECOVERED_STREAMS,
        &SERVE_DRAIN_MICROS,
        &SERVE_SUPERVISOR_WORKER_PANICS,
        &SERVE_SUPERVISOR_LISTENER_RESTARTS,
        &SERVE_BREAKER_TRIPS,
        &SERVE_BREAKER_REJECTIONS,
        &SERVE_BREAKER_PROBES,
        &SERVE_BREAKER_RECOVERIES,
        &SERVE_SHED_CONN_PRESSURE,
        &SERVE_SHED_SPOOL_PRESSURE,
        &SERVE_SHED_TENANT_PRESSURE,
        &SERVE_SHED_SLOW_EVICTIONS,
    ];
}

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

static SPANS: Mutex<BTreeMap<&'static str, SpanAgg>> = Mutex::new(BTreeMap::new());

/// RAII guard produced by [`span!`]: times the enclosing scope and folds the
/// elapsed time into the per-name aggregate on drop. Construct via the
/// macro, not directly.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span. When observability is disabled this never reads the
    /// clock and the drop is free.
    pub fn begin(name: &'static str) -> Self {
        let start = is_enabled().then(Instant::now);
        Self { name, start }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        let agg = spans.entry(self.name).or_default();
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(ns);
        agg.max_ns = agg.max_ns.max(ns);
    }
}

/// Opens a named timing span for the enclosing scope.
///
/// ```
/// aprof_obs::enable();
/// let _span = aprof_obs::span!("phase.replay");
/// aprof_obs::disable();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name)
    };
}

/// Zeroes every counter and clears all span aggregates. Use between
/// benchmark phases or tests; does not change the enabled flag.
pub fn reset() {
    for c in counters::ALL {
        c.reset();
    }
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Aggregated timings of one span name in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct SpanSnapshot {
    /// Span name as given to [`span!`].
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every counter and span aggregate.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter in taxonomy order.
    pub counters: Vec<(String, u64)>,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value by dotted name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Renders the snapshot as the `obs.json` document:
    ///
    /// ```json
    /// {
    ///   "version": 4,
    ///   "counters": { "vm.blocks": 123, ... },
    ///   "spans": [ { "name": "...", "count": 1, "total_ns": 5, "max_ns": 5 } ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"max_ns\": {} }}",
                s.name, s.count, s.total_ns, s.max_ns
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`Snapshot::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Captures the current value of every counter and span aggregate.
pub fn snapshot() -> Snapshot {
    let counters = counters::ALL
        .iter()
        .map(|c| (c.name().to_string(), c.get()))
        .collect();
    let spans = SPANS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, agg)| SpanSnapshot {
            name: (*name).to_string(),
            count: agg.count,
            total_ns: agg.total_ns,
            max_ns: agg.max_ns,
        })
        .collect();
    Snapshot { counters, spans }
}

/// A rate-limited progress reporter: [`Heartbeat::tick`] invokes its message
/// closure and prints to stderr at most once per interval, and only while
/// observability is enabled. The closure is not even called between beats,
/// so formatting cost is bounded by the interval, not the call rate.
pub struct Heartbeat {
    every: Duration,
    last: Option<Instant>,
}

impl Heartbeat {
    /// A heartbeat that prints at most once per `every`.
    pub fn new(every: Duration) -> Self {
        Self { every, last: None }
    }

    /// The default cadence used by the VM and CLI (one line per second).
    pub fn per_second() -> Self {
        Self::new(Duration::from_secs(1))
    }

    /// Prints `[obs] {msg()}` to stderr if the interval has elapsed since
    /// the last beat. The first tick only arms the timer (so short runs
    /// stay silent).
    pub fn tick(&mut self, msg: impl FnOnce() -> String) {
        if !is_enabled() {
            return;
        }
        let now = Instant::now();
        match self.last {
            None => self.last = Some(now),
            Some(last) if now.duration_since(last) >= self.every => {
                self.last = Some(now);
                eprintln!("[obs] {}", msg());
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag, counters and span table are process-global, and the
    // test harness runs tests on parallel threads: serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_counters_do_not_move() {
        let _l = serial();
        reset();
        disable();
        counters::VM_BLOCKS.add(5);
        counters::VM_BLOCKS.incr();
        counters::DRIVER_QUEUE_DEPTH_PEAK.record_max(9);
        assert_eq!(counters::VM_BLOCKS.get(), 0);
        assert_eq!(counters::DRIVER_QUEUE_DEPTH_PEAK.get(), 0);
    }

    #[test]
    fn enabled_counters_accumulate_and_reset() {
        let _l = serial();
        reset();
        enable();
        counters::WIRE_CHUNKS_FLUSHED.add(2);
        counters::WIRE_CHUNKS_FLUSHED.incr();
        counters::DRIVER_QUEUE_DEPTH_PEAK.record_max(4);
        counters::DRIVER_QUEUE_DEPTH_PEAK.record_max(2);
        counters::PROF_SHADOW_BYTES.store(77);
        let snap = snapshot();
        assert_eq!(snap.counter("wire.chunks_flushed"), Some(3));
        assert_eq!(snap.counter("driver.queue_depth_peak"), Some(4));
        assert_eq!(snap.counter("prof.shadow_bytes"), Some(77));
        assert_eq!(snap.counter("no.such.counter"), None);
        reset();
        assert_eq!(counters::WIRE_CHUNKS_FLUSHED.get(), 0);
        disable();
    }

    #[test]
    fn spans_aggregate_by_name() {
        let _l = serial();
        reset();
        enable();
        for _ in 0..3 {
            let _g = span!("test.loop");
        }
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "test.loop").unwrap();
        assert_eq!(s.count, 3);
        assert!(s.max_ns <= s.total_ns);
        disable();
        reset();
    }

    #[test]
    fn json_shape_is_stable() {
        let _l = serial();
        reset();
        enable();
        counters::VM_BLOCKS.add(1);
        let _g = span!("test.json");
        drop(_g);
        let json = snapshot().to_json();
        assert!(json.contains("\"version\": 4"));
        assert!(json.contains("\"vm.blocks\": 1"));
        assert!(json.contains("\"name\": \"test.json\""));
        assert!(json.ends_with("}\n"));
        disable();
        reset();
    }

    #[test]
    fn heartbeat_is_silent_when_disabled() {
        let _l = serial();
        disable();
        let mut hb = Heartbeat::new(Duration::from_millis(0));
        let mut called = false;
        hb.tick(|| {
            called = true;
            String::new()
        });
        assert!(!called);
    }
}
