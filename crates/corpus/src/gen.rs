//! The seeded guest-program generator: random but *interesting* CFGs.
//!
//! A [`CaseSpec`] is a structured, shrinkable description of one guest
//! program — a statement tree per function plus threading/IO knobs — that
//! [`CaseSpec::build`] lowers to a real [`Program`] through the
//! [`aprof_vm::builder`] API. Generation never emits an invalid program:
//! every property the differential oracles rely on holds *by construction*:
//!
//! * **termination** — loops are counted with bounded trip constants,
//!   retry back-edges decrement a counter, and recursive calls clamp and
//!   decrement a depth parameter;
//! * **deadlock freedom** — lock keys are constants acquired in globally
//!   increasing nesting order and always released;
//! * **definite initialization** — the builder writes every register
//!   before its first read, so runs are clean under `strict_regs`;
//! * **valid kernel I/O** — `sys_read`/`sys_write` target the two devices
//!   the built [`Machine`] registers (fd 0 source, fd 1 sink).
//!
//! The *shapes* are the interesting part: nested counted loops, diamonds
//! with a counter-guarded back-edge into one arm (a multi-entry —
//! irreducible — region), call chains with data-dependent recursion depth,
//! fork/join worker pools over shared cells and constant-key locks,
//! semaphore token rings, helper-initiated fork/join, and kernel-input
//! read/write mixes. Determinism contract: the same
//! `(seed, GenConfig)` always yields the same `CaseSpec`, hence the same
//! `Program`, hence (the VM being deterministic) the same event stream.

use aprof_vm::builder::{FunctionBuilder, ProgramBuilder};
use aprof_vm::device::{SinkDevice, SyntheticSource};
use aprof_vm::ir::{CmpOp, FuncId, Program, Reg};
use aprof_vm::{Machine, MachineConfig};
use proptest::shrink::Shrink;
use proptest::TestRng;

/// Base address of the 16-cell static shared region threads contend on.
const SHARED_BASE: i64 = 0x40;
/// Number of shared cells.
const SHARED_CELLS: i64 = 16;
/// Lock keys are `LOCK_BASE + func_index * LOCKS + lock_index`; the
/// per-function partition keeps cross-call acquisition order globally
/// increasing (threads running the same function still contend).
const LOCK_BASE: i64 = 100;
/// Distinct lock keys per function.
const LOCKS: u8 = 4;
/// Recursion depth parameters are clamped to `x % DEPTH_CLAMP` on entry.
const DEPTH_CLAMP: i64 = 8;
/// Semaphore-ring keys are `SEM_BASE + slot` (semaphores key a namespace
/// of their own, but a disjoint constant range keeps traces readable).
const SEM_BASE: i64 = 200;
/// Ring-slot cells live at `RING_BASE + slot`, above the shared region.
const RING_BASE: i64 = 0x60;
/// Maximum semaphore-ring slots.
const RING_SLOTS: i64 = 6;
/// Basic-block budget for one generated case (runaway backstop only;
/// generated programs terminate by construction far below this).
const CASE_MAX_BLOCKS: u64 = 5_000_000;

/// Which statement families the generator may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Helper functions besides `main` (at least 1).
    pub max_helpers: u8,
    /// Worker threads `main` may spawn (0 disables fork/join).
    pub max_threads: u8,
    /// Allow fork/join + locks + shared-cell traffic.
    pub concurrency: bool,
    /// Allow `sys_read`/`sys_write` statements.
    pub kernel_io: bool,
    /// Allow data-dependent-depth self recursion in helpers.
    pub recursion: bool,
    /// Input scale: device cells and buffer sizes derive from this.
    pub size: u16,
}

impl GenConfig {
    /// Everything on — the default corpus profile.
    pub fn mixed() -> Self {
        GenConfig {
            max_helpers: 4,
            max_threads: 4,
            concurrency: true,
            kernel_io: true,
            recursion: true,
            size: 32,
        }
    }

    /// Single-threaded, no kernel input: pure CFG/recursion shapes.
    pub fn sequential() -> Self {
        GenConfig { max_threads: 0, concurrency: false, ..Self::mixed() }
    }

    /// Fork/join + locks, no kernel input: the helgrind fragment.
    pub fn concurrent() -> Self {
        GenConfig { kernel_io: false, recursion: false, ..Self::mixed() }
    }

    /// Kernel-input mixes on one thread: the external-input fragment.
    pub fn kernel() -> Self {
        GenConfig { max_threads: 0, concurrency: false, recursion: false, ..Self::mixed() }
    }

    /// Looks a named profile up (CLI `--profile`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "mixed" => Some(Self::mixed()),
            "sequential" => Some(Self::sequential()),
            "concurrent" => Some(Self::concurrent()),
            "kernel" => Some(Self::kernel()),
            _ => None,
        }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        Self::mixed()
    }
}

/// One statement of the generated statement tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Strided reads then writes over the function's local buffer.
    Work {
        /// Cells read (loop trip count).
        reads: u8,
        /// Cells written (loop trip count).
        writes: u8,
        /// Access stride (modular over the buffer).
        stride: u8,
    },
    /// A counted loop around a nested body.
    Loop {
        /// Trip count.
        trips: u8,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A data-dependent branch diamond. With `retry > 0` the join block
    /// jumps *back into the else arm* a bounded number of times, making
    /// the region multi-entry (irreducible).
    Diamond {
        /// Extra passes through the else arm (0 = plain diamond).
        retry: u8,
        /// Then-arm body.
        then_b: Vec<Stmt>,
        /// Else-arm body.
        else_b: Vec<Stmt>,
    },
    /// Call a later helper, passing a data-dependent depth argument.
    Call {
        /// Target function index into [`CaseSpec::funcs`]; emission skips
        /// targets that are not strictly later than the caller (keeps the
        /// call graph acyclic under shrinking).
        callee: u8,
    },
    /// A constant-key critical section around a nested body.
    Locked {
        /// Lock index (key `LOCK_BASE + func_index * LOCKS + lock % LOCKS`,
        /// partitioned per function so callees never re-acquire a caller's
        /// key); nested sections acquire strictly increasing keys or drop
        /// the lock wrapper.
        lock: u8,
        /// Body run under the lock.
        body: Vec<Stmt>,
    },
    /// `sys_read` a bounded number of cells into the local buffer, then
    /// sum them (kernel-input → external trms input).
    KernelIn {
        /// Requested cells (modular over the buffer size).
        cells: u8,
    },
    /// `sys_write` a bounded number of buffer cells to the sink device.
    KernelOut {
        /// Written cells (modular over the buffer size).
        cells: u8,
    },
    /// Store to one cell of the static shared region.
    SharedWrite {
        /// Cell index (modular over the region).
        cell: u8,
    },
    /// Load one cell of the static shared region.
    SharedRead {
        /// Cell index (modular over the region).
        cell: u8,
    },
    /// A semaphore token ring. Each pass picks a slot from the thread's
    /// depth parameter, posts that slot's semaphore, writes the slot's ring
    /// cell, reads the neighbor slot's cell, then waits the *same* slot.
    /// Posting before waiting means every wait is backed by at least one
    /// outstanding post, so the ring can never deadlock — but a concurrent
    /// thread may consume the token first and hand its own back, which is
    /// exactly the cross-thread handoff ordering worth profiling.
    SemRing {
        /// Ring size (clamped to `1..=RING_SLOTS` at emission).
        slots: u8,
        /// Passes around the ring.
        passes: u8,
    },
    /// Spawn a later helper on its own thread and join it immediately —
    /// fork/join initiated *inside* helpers, not only from `main`'s worker
    /// pool. Joining in place bounds live threads by the spawn-nesting
    /// depth, which the acyclic callee order bounds by the helper count.
    SpawnHelper {
        /// Target function index; same strictly-later discipline as
        /// [`Stmt::Call`] (dangling targets after shrinking drop the
        /// spawn).
        callee: u8,
    },
    /// Voluntarily yield the processor.
    YieldNow,
}

/// One generated function: a local buffer plus a statement tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpec {
    /// Local buffer size in cells (≥ 1 enforced at emission).
    pub buf_cells: u8,
    /// `Some(d)`: the function tail-calls itself with a decremented depth
    /// parameter, clamped to at most `d` (data-dependent actual depth).
    pub recursion: Option<u8>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A complete, shrinkable description of one corpus case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// The seed this case was generated from (carried for reporting).
    pub seed: u64,
    /// Worker threads `main` spawns over the helpers (round-robin).
    pub threads: u8,
    /// Cells the fd-0 input device yields before EOF.
    pub input_cells: u16,
    /// `funcs[0]` is `main`; the rest are helpers `h1…` with one
    /// depth/index parameter each.
    pub funcs: Vec<FuncSpec>,
}

/// Generates the statement tree for one nesting level.
fn gen_stmts(rng: &mut TestRng, cfg: &GenConfig, depth: u8, budget: &mut u8, nfuncs: u8, me: u8) -> Vec<Stmt> {
    let mut out = Vec::new();
    let n = 1 + rng.below(4) as u8;
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let mut pick = rng.below(100);
        // Weighted choice; gated families fall through to plain work.
        let stmt = loop {
            match pick {
                0..=24 => {
                    break Stmt::Work {
                        reads: 1 + rng.below(6) as u8,
                        writes: rng.below(4) as u8,
                        stride: 1 + rng.below(5) as u8,
                    }
                }
                25..=39 if depth > 0 => {
                    break Stmt::Loop {
                        trips: 1 + rng.below(5) as u8,
                        body: gen_stmts(rng, cfg, depth - 1, budget, nfuncs, me),
                    }
                }
                40..=54 if depth > 0 => {
                    break Stmt::Diamond {
                        retry: rng.below(3) as u8,
                        then_b: gen_stmts(rng, cfg, depth - 1, budget, nfuncs, me),
                        else_b: gen_stmts(rng, cfg, depth - 1, budget, nfuncs, me),
                    }
                }
                55..=64 if me + 1 < nfuncs => {
                    break Stmt::Call { callee: me + 1 + rng.below(u64::from(nfuncs - me - 1)) as u8 }
                }
                65..=74 if cfg.concurrency && depth > 0 => {
                    break Stmt::Locked {
                        lock: rng.below(u64::from(LOCKS)) as u8,
                        body: gen_stmts(rng, cfg, depth - 1, budget, nfuncs, me),
                    }
                }
                75..=81 if cfg.kernel_io => break Stmt::KernelIn { cells: 1 + rng.below(12) as u8 },
                82..=85 if cfg.kernel_io => break Stmt::KernelOut { cells: 1 + rng.below(8) as u8 },
                86..=89 if cfg.concurrency => {
                    break Stmt::SharedWrite { cell: rng.below(SHARED_CELLS as u64) as u8 }
                }
                90..=93 if cfg.concurrency => {
                    break Stmt::SharedRead { cell: rng.below(SHARED_CELLS as u64) as u8 }
                }
                94 if cfg.concurrency => {
                    break Stmt::SemRing {
                        slots: 2 + rng.below(RING_SLOTS as u64 - 1) as u8,
                        passes: 1 + rng.below(4) as u8,
                    }
                }
                // Never in the innermost nesting level (`depth >= 1`): the
                // statement budget plus the acyclic callee order keep the
                // spawn fan-out bounded.
                95..=97 if cfg.concurrency && me + 1 < nfuncs && depth >= 1 => {
                    break Stmt::SpawnHelper {
                        callee: me + 1 + rng.below(u64::from(nfuncs - me - 1)) as u8,
                    }
                }
                98..=99 => break Stmt::YieldNow,
                _ => {}
            }
            // The picked family was gated off; redraw within the always-on
            // range so generation still terminates.
            pick = rng.below(55);
        };
        out.push(stmt);
    }
    out
}

impl CaseSpec {
    /// Generates the case for `seed` under `cfg`. Deterministic: equal
    /// inputs produce equal specs.
    pub fn generate(seed: u64, cfg: &GenConfig) -> CaseSpec {
        let mut rng = TestRng::from_seed(seed ^ 0xC0_8875);
        let helpers = 1 + rng.below(u64::from(cfg.max_helpers.max(1))) as u8;
        let nfuncs = 1 + helpers;
        let threads = if cfg.concurrency && cfg.max_threads > 0 {
            rng.below(u64::from(cfg.max_threads) + 1) as u8
        } else {
            0
        };
        let input_cells = 8 + rng.below(u64::from(cfg.size.max(8))) as u16;
        let funcs = (0..nfuncs)
            .map(|me| {
                let mut budget = 10;
                FuncSpec {
                    buf_cells: 1 + rng.below(u64::from(cfg.size.clamp(4, 64))) as u8,
                    recursion: if cfg.recursion && me > 0 && rng.below(3) == 0 {
                        Some(1 + rng.below(5) as u8)
                    } else {
                        None
                    },
                    body: gen_stmts(&mut rng, cfg, 2, &mut budget, nfuncs, me),
                }
            })
            .collect();
        CaseSpec { seed, threads, input_cells, funcs }
    }

    /// Lowers the spec to a validated guest [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if emission produced an invalid program — that would be a
    /// generator bug, which the corpus tests exist to surface.
    pub fn program(&self) -> Program {
        let mut p = ProgramBuilder::new();
        let main = p.declare("main", 0);
        let helper_ids: Vec<FuncId> =
            (1..self.funcs.len()).map(|i| p.declare(&format!("h{i}"), 1)).collect();
        let func_id = |idx: usize| -> FuncId {
            if idx == 0 {
                main
            } else {
                helper_ids[idx - 1]
            }
        };

        for (idx, spec) in self.funcs.iter().enumerate() {
            let mut f = p.function(func_id(idx));
            let mut ctx = Emit::prologue(&mut f, spec, idx);
            if idx == 0 {
                // main: spawn the worker pool first so its own body runs
                // concurrently with the workers, then emit, then join.
                // Workers need a helper to run; shrinking may have dropped
                // them all, which simply disables the pool.
                let workers = if self.funcs.len() > 1 { self.threads } else { 0 };
                let handles: Vec<Reg> = (0..workers)
                    .map(|w| {
                        let target = func_id(1 + (w as usize) % (self.funcs.len() - 1).max(1));
                        let arg = f.const_temp(i64::from(w));
                        let h = f.temp();
                        f.spawn(h, target, &[arg]);
                        h
                    })
                    .collect();
                ctx.emit_stmts(&mut f, self, idx, &spec.body);
                for h in handles {
                    f.join(h);
                }
            } else {
                ctx.emit_stmts(&mut f, self, idx, &spec.body);
                if let Some(cap) = spec.recursion {
                    // if 0 < x' <= cap: acc += self(x' - 1)
                    let cap_r = f.const_temp(i64::from(cap.clamp(1, 6)));
                    let zero = f.const_temp(0);
                    let pos = f.temp();
                    f.cmp(CmpOp::Gt, pos, ctx.depth, zero);
                    let within = f.temp();
                    f.cmp(CmpOp::Le, within, ctx.depth, cap_r);
                    let both = f.temp();
                    f.bin(aprof_vm::ir::BinOp::And, both, pos, within);
                    let rec_bb = f.new_block();
                    let out_bb = f.new_block();
                    f.br(both, rec_bb, out_bb);
                    f.switch_to(rec_bb);
                    let next = f.temp();
                    let one = f.const_temp(1);
                    f.sub(next, ctx.depth, one);
                    let r = f.temp();
                    f.call(Some(r), func_id(idx), &[next]);
                    f.add(ctx.acc, ctx.acc, r);
                    f.jmp(out_bb);
                    f.switch_to(out_bb);
                }
            }
            f.ret(Some(ctx.acc));
        }
        p.build().expect("generator emits valid programs by construction")
    }

    /// Builds a ready-to-run machine: the program plus the two devices
    /// (fd 0: seeded input source, fd 1: sink), a thread-interleaving
    /// quantum, and a runaway block budget.
    pub fn build(&self) -> Machine {
        let mut m = Machine::new(self.program()).with_config(MachineConfig {
            quantum: 16,
            max_blocks: CASE_MAX_BLOCKS,
            // The builder writes every register before its first read, so
            // generated programs must survive the strict mode — running
            // strict lets oracle D observe any violation dynamically.
            strict_regs: true,
            ..MachineConfig::default()
        });
        m.add_device(Box::new(SyntheticSource::new(
            self.seed | 1,
            u64::from(self.input_cells),
        )));
        m.add_device(Box::new(SinkDevice::new()));
        m
    }

    /// Total statements across all functions (a size measure for reports).
    pub fn stmt_count(&self) -> usize {
        fn count(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::Loop { body, .. } | Stmt::Locked { body, .. } => 1 + count(body),
                    Stmt::Diamond { then_b, else_b, .. } => 1 + count(then_b) + count(else_b),
                    _ => 1,
                })
                .sum()
        }
        self.funcs.iter().map(|f| count(&f.body)).sum()
    }

    /// Total basic blocks of the lowered program.
    pub fn block_count(&self) -> usize {
        self.program().functions().iter().map(|f| f.blocks.len()).sum()
    }

    /// One-line description for failure reports.
    pub fn summary(&self) -> String {
        format!(
            "seed={:#x} funcs={} threads={} input_cells={} stmts={} blocks={}",
            self.seed,
            self.funcs.len(),
            self.threads,
            self.input_cells,
            self.stmt_count(),
            self.block_count()
        )
    }
}

/// Per-function emission state.
struct Emit {
    /// The running accumulator every statement feeds; the function returns it.
    acc: Reg,
    /// Local buffer base.
    buf: Reg,
    /// Local buffer size register (constant).
    buf_len: Reg,
    /// Buffer size as a constant.
    buf_cells: i64,
    /// Clamped depth/index parameter (helpers) or a constant 0 (main).
    depth: Reg,
    /// Keys of locks currently held (emission-time nesting discipline).
    held: Vec<i64>,
}

impl Emit {
    /// Emits the shared prologue: buffer allocation, accumulator, and the
    /// depth clamp that makes recursion terminate for any argument.
    fn prologue(f: &mut FunctionBuilder<'_>, spec: &FuncSpec, idx: usize) -> Emit {
        let buf_cells = i64::from(spec.buf_cells.max(1));
        let depth = if idx == 0 {
            f.const_temp(0)
        } else {
            let x = f.param(0);
            let clamp = f.const_temp(DEPTH_CLAMP);
            let d = f.temp();
            f.rem(d, x, clamp);
            d
        };
        let buf_len = f.const_temp(buf_cells);
        let buf = f.temp();
        f.alloc(buf, buf_len);
        let acc = f.temp();
        f.mov(acc, depth);
        Emit { acc, buf, buf_len, buf_cells, depth, held: Vec::new() }
    }

    fn emit_stmts(&mut self, f: &mut FunctionBuilder<'_>, spec: &CaseSpec, me: usize, body: &[Stmt]) {
        for stmt in body {
            self.emit_stmt(f, spec, me, stmt);
        }
    }

    /// `dst = buf + ((i * stride + salt) % buf_cells)` — a strided modular
    /// buffer address.
    fn buffer_addr(&mut self, f: &mut FunctionBuilder<'_>, i: Reg, stride: i64, salt: Reg) -> Reg {
        let s = f.const_temp(stride % self.buf_cells.max(1) + 1);
        let t = f.temp();
        f.mul(t, i, s);
        f.add(t, t, salt);
        let m = f.temp();
        f.rem(m, t, self.buf_len);
        // rem follows the dividend's sign; fold negatives back into range.
        let len2 = self.buf_len;
        f.add(m, m, len2);
        f.rem(m, m, len2);
        let addr = f.temp();
        f.add(addr, self.buf, m);
        addr
    }

    fn emit_stmt(&mut self, f: &mut FunctionBuilder<'_>, spec: &CaseSpec, me: usize, stmt: &Stmt) {
        match stmt {
            Stmt::Work { reads, writes, stride } => {
                let stride = i64::from(*stride);
                let n = f.const_temp(i64::from(*reads));
                let (acc, depth) = (self.acc, self.depth);
                f.for_range(n, |f, i| {
                    let addr = self.buffer_addr(f, i, stride, depth);
                    let v = f.temp();
                    f.load(v, addr, 0);
                    f.add(acc, acc, v);
                });
                if *writes > 0 {
                    let n = f.const_temp(i64::from(*writes));
                    f.for_range(n, |f, i| {
                        let addr = self.buffer_addr(f, i, stride, acc);
                        let v = f.temp();
                        f.add(v, acc, i);
                        f.store(v, addr, 0);
                    });
                }
            }
            Stmt::Loop { trips, body } => {
                let n = f.const_temp(i64::from(*trips));
                let acc = self.acc;
                f.for_range(n, |f, i| {
                    f.add(acc, acc, i);
                    self.emit_stmts(f, spec, me, body);
                });
            }
            Stmt::Diamond { retry, then_b, else_b } => {
                // Parity-of-accumulator branch; the retry back-edge targets
                // the *else arm's entry block* from the join block, so the
                // arm has two in-edges from different regions (multi-entry).
                let two = f.const_temp(2);
                let parity = f.temp();
                f.rem(parity, self.acc, two);
                let ctr = f.const_temp(i64::from(*retry));
                let then_bb = f.new_block();
                let else_bb = f.new_block();
                let join_bb = f.new_block();
                let out_bb = f.new_block();
                f.br(parity, then_bb, else_bb);
                f.switch_to(then_bb);
                self.emit_stmts(f, spec, me, then_b);
                f.jmp(join_bb);
                f.switch_to(else_bb);
                self.emit_stmts(f, spec, me, else_b);
                f.jmp(join_bb);
                f.switch_to(join_bb);
                let one = f.const_temp(1);
                f.sub(ctr, ctr, one);
                let zero = f.const_temp(0);
                let more = f.temp();
                f.cmp(CmpOp::Gt, more, ctr, zero);
                f.br(more, else_bb, out_bb);
                f.switch_to(out_bb);
            }
            Stmt::Call { callee } => {
                let callee = usize::from(*callee);
                // Acyclic by construction: only strictly-later targets are
                // emitted; shrinking may leave dangling indices behind,
                // which simply drop the call.
                if callee > me && callee < spec.funcs.len() {
                    let four = f.const_temp(4);
                    let arg = f.temp();
                    f.rem(arg, self.acc, four);
                    let r = f.temp();
                    // Helper ids follow main in declaration order, so the
                    // spec index is the FuncId.
                    f.call(Some(r), FuncId(callee as u32), &[arg]);
                    f.add(self.acc, self.acc, r);
                }
            }
            Stmt::Locked { lock, body } => {
                // Keys are partitioned per function: every key this function
                // may take is strictly above every key of its callers (calls
                // only go to higher indices), so cross-call acquisition order
                // is globally increasing and a callee can never re-acquire a
                // key its caller holds (mutexes are not reentrant).
                let key = LOCK_BASE + (me as i64) * i64::from(LOCKS) + i64::from(lock % LOCKS);
                // Nesting discipline: only acquire keys strictly above every
                // held key (global order ⇒ no deadlock); otherwise emit the
                // body without the lock wrapper.
                if self.held.last().is_none_or(|&top| key > top) {
                    let k = f.const_temp(key);
                    f.acquire(k);
                    self.held.push(key);
                    self.emit_stmts(f, spec, me, body);
                    self.held.pop();
                    f.release(k);
                } else {
                    self.emit_stmts(f, spec, me, body);
                }
            }
            Stmt::KernelIn { cells } => {
                let n = 1 + i64::from(*cells) % self.buf_cells;
                let fd = f.const_temp(0);
                let len = f.const_temp(n);
                let got = f.temp();
                f.sys_read(got, fd, self.buf, len);
                f.add(self.acc, self.acc, got);
                let (acc, buf) = (self.acc, self.buf);
                f.for_range(len, |f, i| {
                    let addr = f.temp();
                    f.add(addr, buf, i);
                    let v = f.temp();
                    f.load(v, addr, 0);
                    f.add(acc, acc, v);
                });
            }
            Stmt::KernelOut { cells } => {
                let n = 1 + i64::from(*cells) % self.buf_cells;
                let fd = f.const_temp(1);
                let len = f.const_temp(n);
                let sent = f.temp();
                f.sys_write(sent, fd, self.buf, len);
                f.add(self.acc, self.acc, sent);
            }
            Stmt::SharedWrite { cell } => {
                let addr = f.const_temp(SHARED_BASE + i64::from(*cell) % SHARED_CELLS);
                f.store(self.acc, addr, 0);
            }
            Stmt::SharedRead { cell } => {
                let addr = f.const_temp(SHARED_BASE + i64::from(*cell) % SHARED_CELLS);
                let v = f.temp();
                f.load(v, addr, 0);
                f.add(self.acc, self.acc, v);
            }
            Stmt::SemRing { slots, passes } => {
                let ring = i64::from(*slots).clamp(1, RING_SLOTS);
                let n = f.const_temp(i64::from(*passes));
                let (acc, depth) = (self.acc, self.depth);
                f.for_range(n, |f, i| {
                    // slot = (depth + i) mod ring, folded non-negative (the
                    // depth parameter follows its caller's sign) — threads
                    // enter the ring at different slots.
                    let sc = f.const_temp(ring);
                    let slot = f.temp();
                    f.add(slot, depth, i);
                    f.rem(slot, slot, sc);
                    f.add(slot, slot, sc);
                    f.rem(slot, slot, sc);
                    let base = f.const_temp(SEM_BASE);
                    let key = f.temp();
                    f.add(key, base, slot);
                    // Post before wait: the wait below is always backed by
                    // at least one outstanding post, ring-wide, so no
                    // interleaving can deadlock.
                    f.sem_post(key);
                    let rb = f.const_temp(RING_BASE);
                    let cell = f.temp();
                    f.add(cell, rb, slot);
                    f.store(acc, cell, 0);
                    let one = f.const_temp(1);
                    let nxt = f.temp();
                    f.add(nxt, slot, one);
                    f.rem(nxt, nxt, sc);
                    f.add(nxt, nxt, rb);
                    let v = f.temp();
                    f.load(v, nxt, 0);
                    f.add(acc, acc, v);
                    f.sem_wait(key);
                });
            }
            Stmt::SpawnHelper { callee } => {
                let callee = usize::from(*callee);
                // Same acyclicity discipline as Call: only strictly-later
                // targets are emitted, so spawn nesting is bounded by the
                // helper count; shrinking's dangling indices drop the spawn.
                if callee > me && callee < spec.funcs.len() {
                    let four = f.const_temp(4);
                    let arg = f.temp();
                    f.rem(arg, self.acc, four);
                    let h = f.temp();
                    f.spawn(h, FuncId(callee as u32), &[arg]);
                    f.join(h);
                }
            }
            Stmt::YieldNow => f.yield_(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinking: every candidate is structurally smaller; emission tolerates
// any combination (dangling call targets drop, empty bodies are fine).
// ---------------------------------------------------------------------------

impl Shrink for Stmt {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            Stmt::Work { reads, writes, stride } => {
                let mut out = Vec::new();
                if *reads > 1 {
                    out.push(Stmt::Work { reads: reads / 2, writes: *writes, stride: *stride });
                }
                if *writes > 0 {
                    out.push(Stmt::Work { reads: *reads, writes: 0, stride: *stride });
                }
                out
            }
            Stmt::Loop { trips, body } => {
                let mut out = Vec::new();
                // Unwrap: the body once, without the loop.
                if body.len() == 1 {
                    out.push(body[0].clone());
                }
                if *trips > 1 {
                    out.push(Stmt::Loop { trips: trips / 2, body: body.clone() });
                }
                for b in body.shrink_candidates() {
                    out.push(Stmt::Loop { trips: *trips, body: b });
                }
                out
            }
            Stmt::Diamond { retry, then_b, else_b } => {
                let mut out = Vec::new();
                if then_b.len() == 1 {
                    out.push(then_b[0].clone());
                }
                if else_b.len() == 1 {
                    out.push(else_b[0].clone());
                }
                if *retry > 0 {
                    out.push(Stmt::Diamond { retry: 0, then_b: then_b.clone(), else_b: else_b.clone() });
                }
                for b in then_b.shrink_candidates() {
                    out.push(Stmt::Diamond { retry: *retry, then_b: b, else_b: else_b.clone() });
                }
                for b in else_b.shrink_candidates() {
                    out.push(Stmt::Diamond { retry: *retry, then_b: then_b.clone(), else_b: b });
                }
                out
            }
            Stmt::Locked { lock, body } => {
                let mut out = Vec::new();
                if body.len() == 1 {
                    out.push(body[0].clone());
                }
                for b in body.shrink_candidates() {
                    out.push(Stmt::Locked { lock: *lock, body: b });
                }
                out
            }
            Stmt::KernelIn { cells } => {
                if *cells > 1 {
                    vec![Stmt::KernelIn { cells: cells / 2 }]
                } else {
                    Vec::new()
                }
            }
            Stmt::KernelOut { cells } => {
                if *cells > 1 {
                    vec![Stmt::KernelOut { cells: cells / 2 }]
                } else {
                    Vec::new()
                }
            }
            Stmt::SemRing { slots, passes } => {
                let mut out = Vec::new();
                if *passes > 1 {
                    out.push(Stmt::SemRing { slots: *slots, passes: passes / 2 });
                }
                if *slots > 1 {
                    out.push(Stmt::SemRing { slots: slots / 2, passes: *passes });
                }
                out
            }
            // A spawn degrades to a plain call of the same helper: one
            // fewer thread, same callee work.
            Stmt::SpawnHelper { callee } => vec![Stmt::Call { callee: *callee }],
            Stmt::Call { .. }
            | Stmt::SharedWrite { .. }
            | Stmt::SharedRead { .. }
            | Stmt::YieldNow => Vec::new(),
        }
    }
}

impl Shrink for FuncSpec {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for body in self.body.shrink_candidates() {
            out.push(FuncSpec { body, ..self.clone() });
        }
        if self.recursion.is_some() {
            out.push(FuncSpec { recursion: None, ..self.clone() });
        }
        if let Some(d) = self.recursion {
            if d > 1 {
                out.push(FuncSpec { recursion: Some(d / 2), ..self.clone() });
            }
        }
        if self.buf_cells > 1 {
            out.push(FuncSpec { buf_cells: self.buf_cells / 2, ..self.clone() });
        }
        out
    }
}

impl Shrink for CaseSpec {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Structural first: fewer threads, fewer functions.
        if self.threads > 0 {
            out.push(CaseSpec { threads: 0, ..self.clone() });
            out.push(CaseSpec { threads: self.threads - 1, ..self.clone() });
        }
        for i in (1..self.funcs.len()).rev() {
            let mut funcs = self.funcs.clone();
            funcs.remove(i);
            out.push(CaseSpec { funcs, ..self.clone() });
        }
        if self.input_cells > 1 {
            out.push(CaseSpec { input_cells: self.input_cells / 2, ..self.clone() });
        }
        // Then per-function body shrinks.
        for i in 0..self.funcs.len() {
            for fc in self.funcs[i].shrink_candidates() {
                let mut funcs = self.funcs.clone();
                funcs[i] = fc;
                out.push(CaseSpec { funcs, ..self.clone() });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::mixed();
        for seed in 0..32 {
            let a = CaseSpec::generate(seed, &cfg);
            let b = CaseSpec::generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.program().functions(), b.program().functions());
        }
    }

    #[test]
    fn generated_programs_build_and_run() {
        let cfg = GenConfig::mixed();
        for seed in 0..48 {
            let spec = CaseSpec::generate(seed, &cfg);
            let mut m = spec.build();
            let out = m
                .run_native()
                .unwrap_or_else(|e| panic!("seed {seed} ({}) failed: {e}", spec.summary()));
            assert!(out.total_blocks > 0, "seed {seed} ran nothing");
        }
    }

    #[test]
    fn profiles_gate_statement_families() {
        fn has_kernel(body: &[Stmt]) -> bool {
            body.iter().any(|s| match s {
                Stmt::KernelIn { .. } | Stmt::KernelOut { .. } => true,
                Stmt::Loop { body, .. } | Stmt::Locked { body, .. } => has_kernel(body),
                Stmt::Diamond { then_b, else_b, .. } => has_kernel(then_b) || has_kernel(else_b),
                _ => false,
            })
        }
        for seed in 0..64 {
            let seq = CaseSpec::generate(seed, &GenConfig::concurrent());
            assert!(!seq.funcs.iter().any(|f| has_kernel(&f.body)), "seed {seed} leaked kernel io");
            let kern = CaseSpec::generate(seed, &GenConfig::kernel());
            assert_eq!(kern.threads, 0, "kernel profile must be single-threaded");
        }
    }

    #[test]
    fn shrink_candidates_are_structurally_smaller() {
        let cfg = GenConfig::mixed();
        for seed in 0..16 {
            let spec = CaseSpec::generate(seed, &cfg);
            let size = spec.stmt_count() + spec.funcs.len() * 2 + spec.threads as usize;
            for cand in spec.shrink_candidates() {
                let csize =
                    cand.stmt_count() + cand.funcs.len() * 2 + cand.threads as usize;
                assert!(
                    csize <= size,
                    "candidate grew: {csize} > {size} for seed {seed}"
                );
                // Every candidate must still build and run.
                cand.build().run_native().unwrap_or_else(|e| {
                    panic!("shrunk candidate of seed {seed} broken: {e} ({})", cand.summary())
                });
            }
        }
    }

    #[test]
    fn irreducible_retry_diamond_terminates() {
        // A hand-built spec exercising the retry back-edge specifically.
        let spec = CaseSpec {
            seed: 7,
            threads: 0,
            input_cells: 8,
            funcs: vec![FuncSpec {
                buf_cells: 4,
                recursion: None,
                body: vec![Stmt::Diamond {
                    retry: 2,
                    then_b: vec![Stmt::Work { reads: 2, writes: 1, stride: 1 }],
                    else_b: vec![Stmt::Work { reads: 3, writes: 0, stride: 2 }],
                }],
            }],
        };
        let out = spec.build().run_native().expect("terminates");
        assert!(out.total_blocks > 0);
    }
}
