//! The differential oracles: five independent ways of checking one case.
//!
//! Every generated program is executed **once** (recording both the event
//! stream and its wire encoding from the same deterministic run) and the
//! observation is then cross-checked five ways:
//!
//! | oracle | under test            | reference                         |
//! |--------|-----------------------|-----------------------------------|
//! | A      | trms/rms profilers    | naive set-based re-execution      |
//! | B      | batched replay        | sequential replay                 |
//! | C      | wire round-trip       | directly captured event stream    |
//! | D      | dynamic VM faults     | aprof-check static verdicts       |
//! | E      | aprof-bound bounds    | growth fitted to the real profile |
//!
//! [`run_case`] passes only when all five agree. [`run_case_mutated`]
//! additionally corrupts the stream *seen by the profiler under test* (never
//! the one seen by the reference) — the mutation-testing hook that proves
//! the harness actually detects planted profiler bugs. Oracle E always
//! judges the *true* profile: a statically inferred bound must never sit
//! strictly below the growth the execution actually exhibited.

use std::io::Cursor;

use aprof_check::check_program;
use aprof_core::{InputPolicy, NaiveProfiler, RmsProfiler, TrmsProfiler};
use aprof_trace::{
    replay_events, replay_events_batched, Event, EventKind, RecordingTool, RoutineId, ThreadId,
    TimedEvent, Tool,
};
use aprof_wire::{WireOptions, WireReader, WireWriter};

use crate::gen::CaseSpec;

/// Which oracle rejected a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// A: trms/rms engine vs the naive set-based profiler.
    NaiveVsEngine,
    /// B: batched replay vs sequential replay.
    Batching,
    /// C: wire round-trip vs direct capture.
    Wire,
    /// D: aprof-check static verdicts vs dynamic VM behaviour.
    StaticVsDynamic,
    /// E: aprof-bound static cost bounds vs dynamically fitted growth.
    BoundVsFit,
}

impl Oracle {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::NaiveVsEngine => "naive-vs-engine",
            Oracle::Batching => "batched-vs-sequential",
            Oracle::Wire => "wire-roundtrip",
            Oracle::StaticVsDynamic => "static-vs-dynamic",
            Oracle::BoundVsFit => "bound-vs-fit",
        }
    }
}

/// A rejected case: the oracle that fired plus a human-readable reason.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The oracle that rejected the case.
    pub oracle: Oracle,
    /// What disagreed.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oracle {} failed: {}", self.oracle.name(), self.detail)
    }
}

/// Per-case observation summary (all five oracles passed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseReport {
    /// Events the run produced.
    pub events: u64,
    /// Bytes of the wire encoding.
    pub wire_bytes: u64,
    /// Activations the profilers observed.
    pub activations: usize,
    /// Order-sensitive digest of the event stream and profile (the
    /// cross-`--jobs` determinism witness).
    pub digest: u64,
}

/// A deliberately planted profiler bug: a corruption of the event stream
/// delivered to the profiler under test (oracles A and B) while the naive
/// reference sees the true stream. Used by mutation tests to prove the
/// harness detects real bugs; [`run_case`] never applies one.
///
/// Every mutation preserves call/return well-formedness, so the corrupted
/// stream is still *structurally* valid — only its profile is wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop every kernel-write event (external input vanishes from trms).
    DropKernelInput,
    /// Drop every `n`-th plain read event (rms undercounts).
    DropEveryNthRead(u64),
    /// Double the cost of every `n`-th basic-block event.
    ScaleNthCost(u64),
}

impl Mutation {
    /// Applies the corruption to a copy of the stream.
    fn corrupt(self, events: &[TimedEvent]) -> Vec<TimedEvent> {
        let mut reads = 0u64;
        let mut blocks = 0u64;
        let mut out = Vec::with_capacity(events.len());
        for te in events {
            match (self, te.event) {
                (Mutation::DropKernelInput, Event::KernelWrite { .. }) => continue,
                (Mutation::DropEveryNthRead(n), Event::Read { .. }) => {
                    reads += 1;
                    if n > 0 && reads.is_multiple_of(n) {
                        continue;
                    }
                    out.push(*te);
                }
                (Mutation::ScaleNthCost(n), Event::BasicBlock { cost }) => {
                    blocks += 1;
                    if n > 0 && blocks.is_multiple_of(n) {
                        out.push(TimedEvent { event: Event::BasicBlock { cost: cost * 2 }, ..*te });
                    } else {
                        out.push(*te);
                    }
                }
                _ => out.push(*te),
            }
        }
        out
    }
}

/// One activation as compared across profilers.
type Activation = (ThreadId, RoutineId, u64, u64, u64);

fn replay_into<T: Tool>(tool: &mut T, events: &[TimedEvent]) {
    // Infallible source; replay_events also issues the finish() hook.
    let src = events.iter().map(|te| Ok::<_, std::convert::Infallible>((te.thread, te.event)));
    if let Err(never) = replay_events(tool, src) {
        match never {}
    }
}

fn engine_activations(events: &[TimedEvent]) -> Vec<Activation> {
    let mut p = TrmsProfiler::builder().policy(InputPolicy::full()).log_activations(true).build();
    replay_into(&mut p, events);
    p.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect()
}

fn naive_activations(events: &[TimedEvent]) -> Vec<Activation> {
    let mut p = NaiveProfiler::with_policy(InputPolicy::full());
    replay_into(&mut p, events);
    p.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect()
}

/// Compares two activation logs, describing the first divergence.
fn diff_activations(kind: &str, got: &[Activation], want: &[Activation]) -> Option<String> {
    if got == want {
        return None;
    }
    if got.len() != want.len() {
        return Some(format!("{kind}: {} activations vs {} expected", got.len(), want.len()));
    }
    let (i, (g, w)) =
        got.iter().zip(want).enumerate().find(|(_, (g, w))| g != w).expect("lengths equal");
    Some(format!("{kind}: activation {i} diverges: got {g:?}, want {w:?}"))
}

/// Order-sensitive FNV-1a fold over the stream and the profile.
fn fold_digest(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn digest_case(events: &[TimedEvent], activations: &[Activation]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for te in events {
        h = fold_digest(h, &(te.thread.index() as u64).to_le_bytes());
        h = fold_digest(h, format!("{:?}", te.event).as_bytes());
    }
    for a in activations {
        h = fold_digest(h, format!("{a:?}").as_bytes());
    }
    h
}

/// Runs one case through all four oracles (no mutation).
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered.
pub fn run_case(spec: &CaseSpec) -> Result<CaseReport, OracleFailure> {
    run_case_mutated(spec, None)
}

/// Runs one case, optionally corrupting the stream the profiler under test
/// sees (mutation testing). See [`Mutation`].
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered; with a mutation planted
/// this is the *expected* outcome.
pub fn run_case_mutated(
    spec: &CaseSpec,
    mutation: Option<Mutation>,
) -> Result<CaseReport, OracleFailure> {
    // --- One deterministic execution, recorded twice (events + wire). ---
    let program = spec.program();

    // Oracle D, static half: generated programs are clean by construction,
    // so the verifier must admit them.
    let verdict = check_program(&program);
    if verdict.has_errors() {
        let codes: Vec<String> =
            verdict.diagnostics.iter().map(|d| d.render(&verdict.names)).collect();
        return Err(OracleFailure {
            oracle: Oracle::StaticVsDynamic,
            detail: format!("verifier rejected a generated program: {}", codes.join("; ")),
        });
    }

    let mut machine = spec.build();
    let mut rec = RecordingTool::new();
    let mut writer = WireWriter::create(Vec::new(), program.routines(), WireOptions::default())
        .map_err(|e| OracleFailure {
            oracle: Oracle::Wire,
            detail: format!("writer create failed: {e}"),
        })?;

    // Oracle D, dynamic half: the run is strict (use-before-def faults) and
    // budgeted; any fault on a verifier-admitted program is a disagreement.
    if let Err(e) = machine.run_recording(&mut rec, &mut writer) {
        return Err(OracleFailure {
            oracle: Oracle::StaticVsDynamic,
            detail: format!("verifier admitted the program but the run faulted: {e}"),
        });
    }
    let (bytes, summary) = writer.finish().map_err(|e| OracleFailure {
        oracle: Oracle::Wire,
        detail: format!("finish failed: {e}"),
    })?;
    let events = rec.into_trace();

    // The stream the profiler under test sees; the naive reference always
    // sees the true stream.
    let viewed: Vec<TimedEvent> = match mutation {
        Some(m) => m.corrupt(&events),
        None => events.clone(),
    };

    // --- Oracle A: engine vs naive re-execution. ---
    let engine = engine_activations(&viewed);
    let reference = naive_activations(&events);
    if let Some(d) = diff_activations("trms-engine vs naive", &engine, &reference) {
        return Err(OracleFailure { oracle: Oracle::NaiveVsEngine, detail: d });
    }
    // The lean rms profiler ignores kernel events by design, so its oracle
    // only applies to kernel-free streams (the `concurrent` profile).
    let kernel_free = !events
        .iter()
        .any(|te| matches!(te.event.kind(), EventKind::KernelRead | EventKind::KernelWrite));
    if kernel_free {
        let mut lean = RmsProfiler::with_activation_log();
        replay_into(&mut lean, &viewed);
        let lean: Vec<Activation> =
            lean.activations().iter().map(|r| (r.thread, r.routine, 0, r.rms, r.cost)).collect();
        let reference_rms: Vec<Activation> =
            reference.iter().map(|&(t, r, _, rms, cost)| (t, r, 0, rms, cost)).collect();
        if let Some(d) = diff_activations("lean-rms vs naive", &lean, &reference_rms) {
            return Err(OracleFailure { oracle: Oracle::NaiveVsEngine, detail: d });
        }
    }

    // --- Oracle B: batched replay vs sequential replay. ---
    // The chunk size is seed-derived so the corpus sweeps batch boundaries.
    let chunk = 1 + (spec.seed % 61) as usize;
    let mut batched = TrmsProfiler::builder().policy(InputPolicy::full()).log_activations(true).build();
    let src = viewed.iter().map(|te| Ok::<_, std::convert::Infallible>((te.thread, te.event)));
    if let Err(never) = replay_events_batched(&mut batched, src, chunk) {
        match never {}
    }
    let batched: Vec<Activation> =
        batched.activations().iter().map(|r| (r.thread, r.routine, r.trms, r.rms, r.cost)).collect();
    if let Some(d) = diff_activations(&format!("batched(chunk={chunk}) vs sequential"), &batched, &engine)
    {
        return Err(OracleFailure { oracle: Oracle::Batching, detail: d });
    }

    // --- Oracle C: wire round-trip vs direct capture. ---
    let reader = WireReader::new(Cursor::new(&bytes[..]))
        .map_err(|e| OracleFailure {
            oracle: Oracle::Wire,
            detail: format!("reader rejected freshly written bytes: {e}"),
        })?
        .strict();
    let mut decoded = Vec::with_capacity(events.len());
    for item in reader {
        let (thread, event) = item.map_err(|e| OracleFailure {
            oracle: Oracle::Wire,
            detail: format!("decode error after {} events: {e}", decoded.len()),
        })?;
        decoded.push((thread, event));
    }
    let direct: Vec<(ThreadId, Event)> = events.iter().map(|te| (te.thread, te.event)).collect();
    if decoded != direct {
        let i = decoded
            .iter()
            .zip(&direct)
            .position(|(a, b)| a != b)
            .unwrap_or(decoded.len().min(direct.len()));
        return Err(OracleFailure {
            oracle: Oracle::Wire,
            detail: format!(
                "round-trip diverges at event {i}: decoded {:?}, captured {:?} ({} vs {} events)",
                decoded.get(i),
                direct.get(i),
                decoded.len(),
                direct.len()
            ),
        });
    }
    if summary.events != direct.len() as u64 {
        return Err(OracleFailure {
            oracle: Oracle::Wire,
            detail: format!(
                "writer summary counts {} events, capture has {}",
                summary.events,
                direct.len()
            ),
        });
    }

    // --- Oracle E: static cost bounds vs the fitted dynamic growth. ---
    // Judged on the *true* profile (mutations corrupt the stream under
    // test, not reality): the inferred bound of every routine must not sit
    // strictly below the growth model fitted to its (rms, cost) profile.
    let bound_report = aprof_bound::infer_program(&program);
    let mut points: Vec<Vec<(f64, f64)>> = vec![Vec::new(); program.functions().len()];
    for &(_, routine, _, rms, cost) in &reference {
        if let Some(p) = points.get_mut(routine.index()) {
            p.push((rms as f64, cost as f64));
        }
    }
    let comparisons = aprof_bound::compare(&bound_report, &points);
    if let Some(bad) = comparisons.iter().find(|c| c.verdict == aprof_bound::BoundVsFit::Unsound) {
        let fitted = bad
            .fit
            .as_ref()
            .map(|f| format!("{} (R²={:.4})", f.model.notation(), f.r2))
            .unwrap_or_else(|| "<no fit>".into());
        return Err(OracleFailure {
            oracle: Oracle::BoundVsFit,
            detail: format!(
                "routine {} ({}): static bound {} but {} activations fitted {}",
                bad.func,
                bad.name,
                bad.bound.notation(),
                bad.points,
                fitted
            ),
        });
    }

    Ok(CaseReport {
        events: direct.len() as u64,
        wire_bytes: bytes.len() as u64,
        activations: reference.len(),
        digest: digest_case(&events, &reference),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn clean_cases_pass_all_oracles() {
        for seed in 0..24 {
            let spec = CaseSpec::generate(seed, &GenConfig::mixed());
            let report = run_case(&spec)
                .unwrap_or_else(|f| panic!("seed {seed} ({}): {f}", spec.summary()));
            assert!(report.events > 0);
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let spec = CaseSpec::generate(11, &GenConfig::mixed());
        let a = run_case(&spec).expect("passes");
        let b = run_case(&spec).expect("passes");
        assert_eq!(a, b, "same spec must observe the identical run");
    }

    #[test]
    fn bound_oracle_is_sound_across_profiles() {
        // Oracle E runs inside run_case; a broad sweep over every generator
        // profile is the soundness regression for the bound inference.
        for (i, cfg) in [
            GenConfig::mixed(),
            GenConfig::sequential(),
            GenConfig::kernel(),
            GenConfig::concurrent(),
        ]
        .into_iter()
        .enumerate()
        {
            for seed in 0..12 {
                let spec = CaseSpec::generate(seed + 1000 * i as u64, &cfg);
                run_case(&spec)
                    .unwrap_or_else(|f| panic!("seed {seed} ({}): {f}", spec.summary()));
            }
        }
    }

    #[test]
    fn kernel_input_mutation_is_caught() {
        // A kernel-profile case always reads external input, so dropping
        // kernel writes must flip oracle A.
        let spec = CaseSpec::generate(3, &GenConfig::kernel());
        let failure = run_case_mutated(&spec, Some(Mutation::DropKernelInput))
            .expect_err("planted bug must be detected");
        assert_eq!(failure.oracle, Oracle::NaiveVsEngine, "{failure}");
    }

    #[test]
    fn cost_mutation_is_caught() {
        let spec = CaseSpec::generate(5, &GenConfig::sequential());
        let failure = run_case_mutated(&spec, Some(Mutation::ScaleNthCost(2)))
            .expect_err("planted cost bug must be detected");
        assert_eq!(failure.oracle, Oracle::NaiveVsEngine, "{failure}");
    }
}
