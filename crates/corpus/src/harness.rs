//! The fuzzing harness: parallel case execution, shrinking, reporting.
//!
//! [`run_fuzz`] sweeps `cases` seeds derived from one base seed, runs every
//! generated program through the five [`oracle`](crate::oracle)s (optionally
//! on several worker threads), shrinks any failure to a (locally) minimal
//! CFG via the vendored proptest's
//! [`proptest::shrink::shrink_to_minimal`], and renders a
//! deterministic report.
//!
//! **Jobs invariance.** Workers claim case *indices* from a shared counter
//! and deposit results into an index-addressed slot table; rendering and
//! digest folding then walk the slots in index order. The report and the
//! digest are therefore byte-identical for any worker count — the property
//! `aprof-cli fuzz --jobs` is tested against in CI.
//!
//! With [`FuzzConfig::faults`] set, every case additionally runs a
//! crash-safety differential: its wire capture is torn at seeded offsets,
//! salvaged with [`aprof_wire::recover`], and the salvage is required to be
//! an exact event prefix of the original capture that replays identically —
//! plus one run under a seeded instruction budget (a graceful trap mid-run)
//! whose sealed capture must still round-trip strictly.

use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aprof_core::{InputPolicy, TrmsProfiler};
use aprof_faults::{FaultConfig, FaultPlan};
use aprof_trace::{replay_events, Event, RecordingTool, ThreadId};
use aprof_vm::asm;
use aprof_vm::ResourceLimits;
use aprof_wire::{recover, FlushPolicy, WireOptions, WireReader, WireWriter};
use proptest::shrink::shrink_to_minimal;
use proptest::TestRng;

use crate::gen::{CaseSpec, GenConfig};
use crate::oracle::{run_case_mutated, CaseReport, Mutation};

/// Cuts at or below this offset may tear the wire *header*, for which
/// [`recover`] documents a typed error instead of a salvage; the generated
/// routine tables (`main`, `h1`…) keep real headers well under this bound.
const HEADER_CUT_BOUND: usize = 64;

/// Torn-capture cut points tried per case in `--faults` mode.
const FAULT_CUTS: usize = 4;

/// Everything [`run_fuzz`] needs to know.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed; case `i` uses a splitmix-derived seed.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
    /// Generator profile.
    pub profile: GenConfig,
    /// Also run the crash/recover differential per case.
    pub faults: bool,
    /// Plant a profiler bug (mutation testing; see [`Mutation`]).
    pub mutation: Option<Mutation>,
    /// Shrink budget: candidates *tested* per failing case.
    pub shrink_steps: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            cases: 256,
            jobs: 0,
            profile: GenConfig::mixed(),
            faults: false,
            mutation: None,
            shrink_steps: 4000,
        }
    }
}

/// One failing case, already shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Case index within the sweep.
    pub index: u64,
    /// The derived per-case seed.
    pub case_seed: u64,
    /// The original failure, as reported by the oracle.
    pub failure: String,
    /// The failure the minimal case reproduces (same oracle class unless
    /// shrinking crossed into a different, equally real, failure).
    pub minimal_failure: String,
    /// The minimal failing spec.
    pub minimal: CaseSpec,
    /// Basic blocks of the minimal CFG.
    pub minimal_blocks: usize,
    /// The minimal program, printed as guest assembly.
    pub minimal_asm: String,
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Cases run.
    pub cases: u64,
    /// Failures, in case-index order (empty = all oracles agreed).
    pub failures: Vec<FuzzFailure>,
    /// Events observed across all passing cases.
    pub events: u64,
    /// Order-sensitive digest over every case (jobs-invariant).
    pub digest: u64,
    /// The rendered, jobs-invariant report.
    pub report: String,
}

/// splitmix64: derives the per-case seed from (base, index).
fn case_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Result slot for one case. The failure side is boxed: it carries the
/// shrunk spec and its printed assembly, far bigger than a clean report.
type Slot = Result<CaseReport, Box<FuzzFailure>>;

fn run_one(cfg: &FuzzConfig, index: u64) -> Slot {
    let seed = case_seed(cfg.seed, index);
    let spec = CaseSpec::generate(seed, &cfg.profile);
    let outcome = run_case_mutated(&spec, cfg.mutation)
        .map_err(|f| f.to_string())
        .and_then(|report| {
            if cfg.faults {
                crash_recovery_round(&spec, seed).map(|()| report)
            } else {
                Ok(report)
            }
        });
    match outcome {
        Ok(report) => Ok(report),
        Err(failure) => {
            // Shrink: keep any candidate that still fails the same pipeline.
            let mutation = cfg.mutation;
            let faults = cfg.faults;
            let still_fails = |cand: &CaseSpec| {
                run_case_mutated(cand, mutation).is_err()
                    || (faults && crash_recovery_round(cand, seed).is_err())
            };
            let minimal = shrink_to_minimal(spec, cfg.shrink_steps, still_fails);
            let minimal_failure = run_case_mutated(&minimal, mutation)
                .err()
                .map(|f| f.to_string())
                .or_else(|| {
                    faults.then(|| crash_recovery_round(&minimal, seed).err()).flatten()
                })
                .unwrap_or_else(|| "failure no longer reproduces (flaky oracle?)".into());
            Err(Box::new(FuzzFailure {
                index,
                case_seed: seed,
                failure,
                minimal_failure,
                minimal_blocks: minimal.block_count(),
                minimal_asm: asm::print(&minimal.program()),
                minimal,
            }))
        }
    }
}

/// The crash-safety differential for one case (see module docs): torn
/// captures must salvage to an exact, identically-replaying event prefix,
/// and a budget-trapped partial run must still round-trip strictly.
///
/// # Errors
///
/// Returns a description of the first violated crash-safety property.
pub fn crash_recovery_round(spec: &CaseSpec, salt: u64) -> Result<(), String> {
    let program = spec.program();
    // Small chunks so even short captures span several chunk boundaries.
    let options = WireOptions { chunk_bytes: 256, flush: FlushPolicy::OnFinish };

    let mut machine = spec.build();
    let mut rec = RecordingTool::new();
    let mut writer = WireWriter::create(Vec::new(), program.routines(), options)
        .map_err(|e| format!("crash-recovery: writer create failed: {e}"))?;
    machine
        .run_recording(&mut rec, &mut writer)
        .map_err(|e| format!("crash-recovery: reference run faulted: {e}"))?;
    let (bytes, _) = writer
        .finish()
        .map_err(|e| format!("crash-recovery: finish failed: {e}"))?;
    let events = rec.into_trace();
    let direct: Vec<(ThreadId, Event)> = events.iter().map(|te| (te.thread, te.event)).collect();

    // --- Torn-capture salvage: kill the file at seeded offsets. ---
    let mut rng = TestRng::from_seed(salt ^ 0xFA_17);
    for _ in 0..FAULT_CUTS {
        let cut = 1 + rng.below(bytes.len() as u64) as usize;
        let torn = &bytes[..cut];
        let mut salvaged = Vec::new();
        match recover(Cursor::new(torn), &mut salvaged) {
            Err(e) if cut <= HEADER_CUT_BOUND => {
                // Header cuts yield a typed error by contract.
                let _ = e;
                continue;
            }
            Err(e) => {
                return Err(format!(
                    "crash-recovery: recover failed on a body cut at {cut}/{}: {e}",
                    bytes.len()
                ));
            }
            Ok(summary) => {
                let prefix = read_strict(&salvaged).map_err(|e| {
                    format!("crash-recovery: strict read of salvage (cut {cut}) failed: {e}")
                })?;
                if prefix.len() as u64 != summary.events {
                    return Err(format!(
                        "crash-recovery: salvage summary says {} events, file has {}",
                        summary.events,
                        prefix.len()
                    ));
                }
                if prefix.len() > direct.len() || prefix[..] != direct[..prefix.len()] {
                    return Err(format!(
                        "crash-recovery: salvage (cut {cut}) is not a prefix of the capture \
                         ({} vs {} events)",
                        prefix.len(),
                        direct.len()
                    ));
                }
                // The salvaged prefix must replay exactly like the same
                // prefix of the direct capture.
                let a = trms_fingerprint(&prefix);
                let b = trms_fingerprint(&direct[..prefix.len()]);
                if a != b {
                    return Err(format!(
                        "crash-recovery: salvaged prefix (cut {cut}, {} events) replays \
                         differently from the direct prefix",
                        prefix.len()
                    ));
                }
            }
        }
    }

    // --- Graceful-trap partial capture: a seeded instruction budget stops
    // the guest mid-run; the sealed capture must still round-trip. ---
    let plan = FaultPlan::new(FaultConfig {
        seed: salt,
        budget_per_mille: 1000,
        vm_instruction_budget: 1 + rng.below(4000),
        ..FaultConfig::off(salt)
    });
    let budget = plan.vm_budget(0).expect("budget_per_mille=1000 always injects");
    let machine = spec.build();
    let mut config = machine.config();
    config.limits = ResourceLimits::instruction_watchdog(budget);
    let mut machine = machine.with_config(config);
    let mut rec = RecordingTool::new();
    let mut writer = WireWriter::create(Vec::new(), program.routines(), options)
        .map_err(|e| format!("crash-recovery: trap writer create failed: {e}"))?;
    machine
        .run_recording(&mut rec, &mut writer)
        .map_err(|e| format!("crash-recovery: budgeted run errored instead of trapping: {e}"))?;
    let (bytes, _) = writer
        .finish()
        .map_err(|e| format!("crash-recovery: trap finish failed: {e}"))?;
    let partial: Vec<(ThreadId, Event)> =
        rec.into_trace().iter().map(|te| (te.thread, te.event)).collect();
    let decoded = read_strict(&bytes)
        .map_err(|e| format!("crash-recovery: strict read of trap capture failed: {e}"))?;
    if decoded != partial {
        return Err(format!(
            "crash-recovery: trap capture round-trip diverges ({} vs {} events)",
            decoded.len(),
            partial.len()
        ));
    }
    Ok(())
}

fn read_strict(bytes: &[u8]) -> Result<Vec<(ThreadId, Event)>, String> {
    let reader = WireReader::new(Cursor::new(bytes)).map_err(|e| e.to_string())?.strict();
    let mut out = Vec::new();
    for item in reader {
        out.push(item.map_err(|e| e.to_string())?);
    }
    Ok(out)
}

/// Profile fingerprint of an event stream (activation log of the trms
/// engine under the full policy).
fn trms_fingerprint(events: &[(ThreadId, Event)]) -> Vec<(ThreadId, u64, u64, u64)> {
    let mut p = TrmsProfiler::builder().policy(InputPolicy::full()).log_activations(true).build();
    let src = events.iter().map(|&(t, e)| Ok::<_, std::convert::Infallible>((t, e)));
    if let Err(never) = replay_events(&mut p, src) {
        match never {}
    }
    p.activations().iter().map(|r| (r.thread, r.trms, r.rms, r.cost)).collect()
}

#[allow(clippy::cast_possible_truncation)]
fn fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for &b in &v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs the sweep. See the module docs for the jobs-invariance contract.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.jobs
    }
    .min(cfg.cases.max(1) as usize)
    .max(1);

    let mut slots: Vec<Option<Slot>> = Vec::new();
    slots.resize_with(cfg.cases as usize, || None);
    let slots = Mutex::new(slots);
    let next = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= cfg.cases {
                    break;
                }
                let slot = run_one(cfg, index);
                slots.lock().expect("no worker panics while holding the lock")[index as usize] =
                    Some(slot);
            });
        }
    });

    let slots = slots.into_inner().expect("workers joined");
    let mut failures = Vec::new();
    let mut events = 0u64;
    let mut wire_bytes = 0u64;
    let mut activations = 0u64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (index, slot) in slots.into_iter().enumerate() {
        let slot = slot.expect("every index below cases was claimed");
        match slot {
            Ok(report) => {
                events += report.events;
                wire_bytes += report.wire_bytes;
                activations += report.activations as u64;
                digest = fold(digest, report.digest);
            }
            Err(f) => {
                digest = fold(digest, 0xDEAD ^ f.case_seed ^ index as u64);
                failures.push(*f);
            }
        }
    }

    let mut report = String::new();
    report.push_str(&format!(
        "corpus: seed={} cases={} profile-threads<={} faults={}{}\n",
        cfg.seed,
        cfg.cases,
        cfg.profile.max_threads,
        cfg.faults,
        match cfg.mutation {
            Some(m) => format!(" mutation={m:?}"),
            None => String::new(),
        },
    ));
    report.push_str(&format!(
        "observed: {events} events, {activations} activations, {wire_bytes} wire bytes\n"
    ));
    for f in &failures {
        report.push_str(&format!(
            "FAIL case {} (seed {:#x}): {}\n  shrunk to {} blocks ({}): {}\n{}\n",
            f.index,
            f.case_seed,
            f.failure,
            f.minimal_blocks,
            f.minimal.summary(),
            f.minimal_failure,
            indent(&f.minimal_asm),
        ));
    }
    report.push_str(&format!(
        "result: {}/{} cases passed, digest {digest:016x}\n",
        cfg.cases - failures.len() as u64,
        cfg.cases,
    ));

    FuzzOutcome { cases: cfg.cases, failures, events, digest, report }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_passes_and_is_jobs_invariant() {
        let base = FuzzConfig { seed: 9, cases: 12, ..FuzzConfig::default() };
        let one = run_fuzz(&FuzzConfig { jobs: 1, ..base });
        assert!(one.failures.is_empty(), "{}", one.report);
        for jobs in [2, 4, 7] {
            let n = run_fuzz(&FuzzConfig { jobs, ..base });
            assert_eq!(n.report, one.report, "jobs={jobs} changed the report");
            assert_eq!(n.digest, one.digest, "jobs={jobs} changed the digest");
        }
    }

    #[test]
    fn case_seeds_are_spread() {
        let seeds: std::collections::HashSet<u64> =
            (0..64).map(|i| case_seed(1, i)).collect();
        assert_eq!(seeds.len(), 64, "derived seeds must not collide");
    }

    #[test]
    fn planted_bug_is_caught_and_shrunk() {
        let cfg = FuzzConfig {
            seed: 1,
            cases: 8,
            jobs: 2,
            profile: GenConfig::kernel(),
            mutation: Some(Mutation::DropKernelInput),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&cfg);
        assert!(!outcome.failures.is_empty(), "planted bug missed:\n{}", outcome.report);
        let best = outcome.failures.iter().map(|f| f.minimal_blocks).min().unwrap();
        assert!(best < 20, "expected a <20-block minimal CFG, got {best}:\n{}", outcome.report);
    }

    #[test]
    fn crash_recovery_round_passes_on_clean_cases() {
        for seed in 0..6 {
            let spec = CaseSpec::generate(case_seed(3, seed), &GenConfig::mixed());
            crash_recovery_round(&spec, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
