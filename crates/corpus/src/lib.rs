//! Fuzzed guest-CFG corpus, verified differentially end-to-end.
//!
//! This crate closes the loop between the subsystems of the workspace: a
//! seeded, deterministic generator ([`gen`]) emits random-but-interesting
//! guest programs — nested loops, irreducible-ish diamonds, recursion with
//! data-dependent depth, fork/join worker pools over locks and shared
//! cells, kernel-input read/write mixes — and a differential harness
//! ([`harness`]) runs every one of them through five independent oracles
//! ([`oracle`]):
//!
//! 1. the rms/trms profiling engines against the naive set-based
//!    re-execution oracle (Fig. 10 of the paper),
//! 2. batched replay against sequential replay,
//! 3. the wire-format round-trip against the directly captured stream,
//! 4. the static verifier's verdict against the dynamic VM behaviour.
//!
//! Failures shrink to a (locally) minimal CFG through the vendored
//! proptest's [`Shrink`](proptest::shrink::Shrink) machinery, and the
//! harness is `--jobs`-invariant: the rendered report and its digest are
//! byte-identical whatever the worker count.
//!
//! # Example
//!
//! ```
//! use aprof_corpus::{FuzzConfig, run_fuzz};
//!
//! let outcome = run_fuzz(&FuzzConfig { seed: 1, cases: 8, ..FuzzConfig::default() });
//! assert!(outcome.failures.is_empty(), "{}", outcome.report);
//! assert_eq!(outcome.cases, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod oracle;

pub use gen::{CaseSpec, FuncSpec, GenConfig, Stmt};
pub use harness::{crash_recovery_round, run_fuzz, FuzzConfig, FuzzFailure, FuzzOutcome};
pub use oracle::{run_case, run_case_mutated, CaseReport, Mutation, Oracle, OracleFailure};
