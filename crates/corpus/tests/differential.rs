//! The corpus differential suite: generated programs through all four
//! oracles, across every generator profile.
//!
//! Case counts respect `PROPTEST_CASES` (the repo-wide knob for scaling
//! property-test effort) so CI can dial the sweep up without code changes.

use aprof_corpus::{run_fuzz, CaseSpec, FuzzConfig, GenConfig};

fn cases(default: u64) -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[test]
fn mixed_corpus_passes_all_four_oracles() {
    let outcome = run_fuzz(&FuzzConfig { seed: 1, cases: cases(64), ..FuzzConfig::default() });
    assert!(outcome.failures.is_empty(), "{}", outcome.report);
    assert!(outcome.events > 0, "corpus observed no events");
}

#[test]
fn sequential_profile_passes() {
    let outcome = run_fuzz(&FuzzConfig {
        seed: 2,
        cases: cases(32),
        profile: GenConfig::sequential(),
        ..FuzzConfig::default()
    });
    assert!(outcome.failures.is_empty(), "{}", outcome.report);
}

#[test]
fn concurrent_profile_passes() {
    let outcome = run_fuzz(&FuzzConfig {
        seed: 3,
        cases: cases(32),
        profile: GenConfig::concurrent(),
        ..FuzzConfig::default()
    });
    assert!(outcome.failures.is_empty(), "{}", outcome.report);
}

#[test]
fn kernel_profile_passes() {
    let outcome = run_fuzz(&FuzzConfig {
        seed: 4,
        cases: cases(32),
        profile: GenConfig::kernel(),
        ..FuzzConfig::default()
    });
    assert!(outcome.failures.is_empty(), "{}", outcome.report);
}

/// The corpus actually exercises the interesting shapes: across a modest
/// sweep, generated programs collectively spawn workers, recurse, take
/// locks, and read kernel input.
#[test]
fn corpus_reaches_interesting_shapes() {
    use aprof_corpus::Stmt;
    fn stmts(body: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
        for s in body {
            f(s);
            match s {
                Stmt::Loop { body, .. } | Stmt::Locked { body, .. } => stmts(body, f),
                Stmt::Diamond { then_b, else_b, .. } => {
                    stmts(then_b, f);
                    stmts(else_b, f);
                }
                _ => {}
            }
        }
    }
    let (mut threads, mut recursion, mut locks, mut kernel, mut diamonds) = (0, 0, 0, 0, 0);
    let (mut rings, mut helper_spawns) = (0, 0);
    for seed in 0..64u64 {
        let spec = CaseSpec::generate(seed, &GenConfig::mixed());
        threads += u64::from(spec.threads > 0);
        recursion += u64::from(spec.funcs.iter().any(|f| f.recursion.is_some()));
        for (idx, func) in spec.funcs.iter().enumerate() {
            stmts(&func.body, &mut |s| match s {
                Stmt::Locked { .. } => locks += 1,
                Stmt::KernelIn { .. } | Stmt::KernelOut { .. } => kernel += 1,
                Stmt::Diamond { retry, .. } if *retry > 0 => diamonds += 1,
                Stmt::SemRing { .. } => rings += 1,
                Stmt::SpawnHelper { .. } if idx > 0 => helper_spawns += 1,
                _ => {}
            });
        }
    }
    assert!(threads >= 16, "only {threads}/64 specs spawn workers");
    assert!(recursion >= 8, "only {recursion}/64 specs recurse");
    assert!(locks >= 32, "only {locks} lock sections across the sweep");
    assert!(kernel >= 32, "only {kernel} kernel-I/O statements across the sweep");
    assert!(diamonds >= 16, "only {diamonds} irreducible retry diamonds across the sweep");
    assert!(rings >= 4, "only {rings} semaphore rings across the sweep");
    assert!(helper_spawns >= 4, "only {helper_spawns} spawn-inside-helper sites across the sweep");
}
