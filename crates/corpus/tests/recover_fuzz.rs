//! Crash-safety over the fuzzed corpus: kill/recover/replay differentials
//! on *generated* programs (the wire crate's own recovery tests use
//! hand-written captures; this extends them to arbitrary CFG shapes).

use aprof_corpus::{crash_recovery_round, run_fuzz, CaseSpec, FuzzConfig, GenConfig};

#[test]
fn torn_captures_of_generated_programs_salvage_to_replayable_prefixes() {
    for seed in 0..32u64 {
        let spec = CaseSpec::generate(seed.wrapping_mul(0x9E37_79B9), &GenConfig::mixed());
        crash_recovery_round(&spec, seed)
            .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", spec.summary()));
    }
}

#[test]
fn concurrent_captures_survive_crashes_too() {
    for seed in 0..16u64 {
        let mut spec = CaseSpec::generate(seed, &GenConfig::concurrent());
        spec.threads = spec.threads.max(2);
        crash_recovery_round(&spec, seed)
            .unwrap_or_else(|e| panic!("seed {seed} ({}): {e}", spec.summary()));
    }
}

/// The `--faults` sweep wires the crash differential into the harness: it
/// must pass on a clean corpus and stay jobs-invariant.
#[test]
fn faulted_sweep_passes_and_stays_jobs_invariant() {
    let base = FuzzConfig { seed: 7, cases: 8, faults: true, ..FuzzConfig::default() };
    let one = run_fuzz(&FuzzConfig { jobs: 1, ..base });
    assert!(one.failures.is_empty(), "{}", one.report);
    let four = run_fuzz(&FuzzConfig { jobs: 4, ..base });
    assert_eq!(four.report, one.report, "--faults sweep not jobs-invariant");
}
