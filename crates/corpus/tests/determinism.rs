//! The seeding/determinism contract (DESIGN.md §11): equal seeds yield
//! equal programs, runs, and reports — independent of worker count.

use aprof_corpus::{run_case, run_fuzz, CaseSpec, FuzzConfig, GenConfig};

#[test]
fn equal_seeds_yield_equal_programs() {
    for profile in [
        GenConfig::mixed(),
        GenConfig::sequential(),
        GenConfig::concurrent(),
        GenConfig::kernel(),
    ] {
        for seed in 0..24u64 {
            let a = CaseSpec::generate(seed, &profile);
            let b = CaseSpec::generate(seed, &profile);
            assert_eq!(a, b, "spec for seed {seed} not deterministic");
            assert_eq!(
                aprof_vm::asm::print(&a.program()),
                aprof_vm::asm::print(&b.program()),
                "program for seed {seed} not deterministic"
            );
        }
    }
}

#[test]
fn case_reports_are_reproducible() {
    for seed in 0..12u64 {
        let spec = CaseSpec::generate(seed, &GenConfig::mixed());
        let a = run_case(&spec).expect("clean case");
        let b = run_case(&spec).expect("clean case");
        assert_eq!(a, b, "seed {seed}: two runs observed different reports");
    }
}

/// The harness contract `aprof-cli fuzz` relies on: the report text and the
/// digest are byte-identical for every `--jobs` setting.
#[test]
fn sweep_is_jobs_invariant() {
    let base = FuzzConfig { seed: 41, cases: 20, ..FuzzConfig::default() };
    let reference = run_fuzz(&FuzzConfig { jobs: 1, ..base });
    assert!(reference.failures.is_empty(), "{}", reference.report);
    for jobs in [2, 3, 5, 8, 16] {
        let outcome = run_fuzz(&FuzzConfig { jobs, ..base });
        assert_eq!(outcome.report, reference.report, "jobs={jobs} changed the report");
        assert_eq!(outcome.digest, reference.digest, "jobs={jobs} changed the digest");
    }
}

/// Different seeds produce genuinely different corpora (no accidental
/// seed-folding in the pipeline).
#[test]
fn different_seeds_differ() {
    let a = run_fuzz(&FuzzConfig { seed: 1, cases: 8, ..FuzzConfig::default() });
    let b = run_fuzz(&FuzzConfig { seed: 2, cases: 8, ..FuzzConfig::default() });
    assert_ne!(a.digest, b.digest, "seeds 1 and 2 produced identical corpora");
}
