//! Static/dynamic race containment over the fuzzed concurrent corpus:
//! every address the happens-before detector flags during a real run of a
//! *generated* program must lie inside the static verifier's race-candidate
//! set. Extends `crates/check/tests/race_crosscheck.rs` from the three
//! hand-written workload families to ≥64 machine-generated fork/join + lock
//! programs.

use aprof_check::check_program;
use aprof_corpus::{CaseSpec, GenConfig};
use aprof_tools::HelgrindTool;

#[test]
fn dynamic_races_on_generated_programs_are_statically_anticipated() {
    let mut ran_concurrent = 0u32;
    let mut dynamic_races = 0u64;
    for seed in 0..64u64 {
        let mut spec = CaseSpec::generate(seed, &GenConfig::concurrent());
        // The containment property is only interesting with real
        // parallelism; force at least two workers (specs are plain data,
        // and the builder guards the pool on helpers existing).
        spec.threads = spec.threads.max(2);
        let program = spec.program();
        let report = check_program(&program);
        let mut machine = spec.build();
        let mut tool = HelgrindTool::new();
        machine
            .run_with(&mut tool)
            .unwrap_or_else(|e| panic!("seed {seed} ({}): guest error: {e}", spec.summary()));
        ran_concurrent += 1;
        for addr in tool.racy_addresses() {
            dynamic_races += 1;
            assert!(
                report.races.covers_addr(addr),
                "seed {seed} ({}): dynamic race on cell {addr} missing from static \
                 candidates (cells {:?})",
                spec.summary(),
                report.races.cells
            );
        }
    }
    assert_eq!(ran_concurrent, 64, "all 64 generated programs must run");
    // The corpus shares cells across unlocked worker accesses, so some
    // dynamic races must actually occur — otherwise this test is vacuous.
    assert!(dynamic_races > 0, "no dynamic race across 64 concurrent programs (vacuous test)");
}
