//! Mutation testing of the harness itself: deliberately planted profiler
//! bugs must be *caught* by the oracles and *shrunk* to a tiny CFG.
//!
//! This is the acceptance test for the whole differential pipeline — a
//! harness that can't catch a seeded bug proves nothing about the real
//! profilers.

use aprof_corpus::{run_fuzz, FuzzConfig, GenConfig, Mutation, Oracle};

fn hunt(profile: GenConfig, mutation: Mutation) -> aprof_corpus::FuzzOutcome {
    run_fuzz(&FuzzConfig {
        seed: 1,
        cases: 16,
        profile,
        mutation: Some(mutation),
        ..FuzzConfig::default()
    })
}

#[test]
fn dropped_kernel_input_is_caught_and_shrunk_small() {
    let outcome = hunt(GenConfig::kernel(), Mutation::DropKernelInput);
    assert!(!outcome.failures.is_empty(), "planted bug missed:\n{}", outcome.report);
    let best = outcome.failures.iter().min_by_key(|f| f.minimal_blocks).unwrap();
    assert!(
        best.minimal_blocks < 20,
        "minimal CFG has {} blocks, want <20:\n{}",
        best.minimal_blocks,
        best.minimal_asm
    );
    assert!(
        best.minimal_failure.contains(Oracle::NaiveVsEngine.name()),
        "wrong oracle fired: {}",
        best.minimal_failure
    );
    // The shrunk reproducer is a real, reprintable guest program.
    assert!(
        aprof_vm::asm::parse(&best.minimal_asm).is_ok(),
        "minimal asm does not round-trip:\n{}",
        best.minimal_asm
    );
}

#[test]
fn dropped_reads_are_caught() {
    let outcome = hunt(GenConfig::sequential(), Mutation::DropEveryNthRead(2));
    assert!(!outcome.failures.is_empty(), "planted read-drop missed:\n{}", outcome.report);
    let best = outcome.failures.iter().min_by_key(|f| f.minimal_blocks).unwrap();
    assert!(best.minimal_blocks < 20, "shrunk to {} blocks:\n{}", best.minimal_blocks, best.minimal_asm);
}

#[test]
fn scaled_costs_are_caught() {
    let outcome = hunt(GenConfig::sequential(), Mutation::ScaleNthCost(2));
    assert!(!outcome.failures.is_empty(), "planted cost bug missed:\n{}", outcome.report);
}

/// Shrinking must preserve the failure: the minimal spec still fails, and
/// its rendered report says so (no "no longer reproduces" escapes).
#[test]
fn shrunk_reproducers_still_fail() {
    let outcome = hunt(GenConfig::kernel(), Mutation::DropKernelInput);
    for f in &outcome.failures {
        assert!(
            !f.minimal_failure.contains("no longer reproduces"),
            "case {}: shrinking lost the failure",
            f.index
        );
    }
}
