//! `aprof-cli` — run guest programs or bundled workloads under any tool of
//! the suite, and inspect input-sensitive profiles.
//!
//! ```text
//! aprof-cli list
//! aprof-cli run --workload mysqld --size 160 --threads 3 --plot mysql_select
//! aprof-cli run --workload 350.md --tool helgrind
//! aprof-cli run --workload vips --policy external --top 5
//! aprof-cli run --workload dedup --cct
//! aprof-cli run --workload mysqld --bottlenecks
//! aprof-cli asm program.s --plot my_function
//! aprof-cli run --workload producer_consumer --save-trace trace.txt
//! aprof-cli record trace.wire --workload mysqld --size 160
//! aprof-cli record trace.wire --workload mysqld --durable
//! aprof-cli replay trace.wire --tool rms
//! aprof-cli trace-info trace.wire
//! aprof-cli recover torn.wire salvaged.wire
//! aprof-cli report report.html --workload mysqld --observe
//! aprof-cli replay trace.wire --report report.html
//! aprof-cli run --workload dedup --observe --obs-json metrics.json
//! aprof-cli replay t1.wire t2.wire --profile-out merged.profile
//! aprof-cli check program.s --deny-lints
//! aprof-cli check --workloads
//! aprof-cli fuzz --seed 1 --cases 256
//! aprof-cli fuzz --seed 7 --cases 64 --faults --jobs 4
//! aprof-cli serve --spool /var/aprof --unix /run/aprof.sock
//! aprof-cli submit --to unix:/run/aprof.sock --tenant web t.wire
//! aprof-cli submit --to tcp:127.0.0.1:7071 --profile web
//! ```

use aprof::analysis::render::{render_plot, Table};
use aprof::analysis::{fit_best, CostPlot, Metric, PlotKind, ReportInputs};
use aprof::core::{InputPolicy, ProfileReport, TrmsProfiler};
use aprof::tools::{CallgrindTool, HelgrindTool, MemcheckTool};
use aprof::trace::{textio, EventKind, RecordingTool, RoutineTable, Trace};
use aprof::faults::FaultConfig;
use aprof::serve::{
    client as serve_client, BreakerConfig, RetryPolicy, ServeConfig, ServeError, Server, Target,
};
use aprof::vm::{asm, Machine, ResourceLimits};
use aprof::wire::{
    recover, DurableFile, FlushPolicy, WireOptions, WireReader, WireWriter, DEFAULT_CHUNK_BYTES,
};
use aprof::workloads::{all, by_name, WorkloadParams};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => with_observe(&args[1..], cmd_run),
        Some("asm") => with_observe(&args[1..], cmd_asm),
        Some("record") => with_observe(&args[1..], cmd_record),
        Some("replay") => with_observe(&args[1..], cmd_replay),
        Some("trace-info") => with_observe(&args[1..], cmd_trace_info),
        Some("recover") => with_observe(&args[1..], cmd_recover),
        Some("report") => with_observe(&args[1..], cmd_report),
        Some("bench") => with_observe(&args[1..], cmd_bench),
        Some("serve") => with_observe(&args[1..], cmd_serve),
        Some("submit") => with_observe(&args[1..], cmd_submit),
        Some("fuzz") => with_observe(&args[1..], cmd_fuzz),
        Some("check") => cmd_check(&args[1..]),
        Some("bound") => cmd_bound(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Wraps a command with the observability lifecycle: `--observe` (or an
/// explicit `--obs-json PATH`) turns the self-metrics layer on before the
/// command runs and writes the counter/span snapshot as JSON when it ends —
/// whatever the exit code, so failed runs can still be diagnosed.
fn with_observe(args: &[String], f: impl FnOnce(&[String]) -> i32) -> i32 {
    let obs_path = args
        .iter()
        .position(|a| a == "--obs-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let observe = obs_path.is_some() || args.iter().any(|a| a == "--observe");
    if observe {
        aprof::obs::enable();
    }
    let code = f(args);
    if observe {
        let path = obs_path.unwrap_or_else(|| "obs.json".into());
        let snap = aprof::obs::snapshot();
        match snap.write_json(std::path::Path::new(&path)) {
            Ok(()) => eprintln!("[obs] wrote self-metrics to {path}"),
            Err(e) => eprintln!("[obs] cannot write {path}: {e}"),
        }
        aprof::obs::disable();
    }
    code
}

const USAGE: &str = "\
aprof-cli — input-sensitive profiling

commands:
  list                         registered workloads and tools
  run  --workload NAME [opts]  run a bundled workload under a tool
  asm  FILE [opts]             run a guest assembly program under a tool
  record FILE --workload NAME  run a workload, profiling it live while
                               streaming its event trace to FILE in the
                               binary wire format; `record FILE PROG.s`
                               records an assembly program instead
  replay FILES [opts]          profile previously saved traces (wire or
                               text format, detected automatically; wire
                               traces stream in O(chunk) memory); several
                               wire traces merge into one aggregate
                               profile, byte-identical to a service
                               tenant's aggregate of the same streams
  trace-info FILE              inspect a saved trace: format, events,
                               chunks, threads, and any corrupt chunks
                               skipped during decode
  recover IN [OUT]             salvage a truncated or corrupt wire trace:
                               re-scan IN for CRC-valid chunks and write
                               them with a fresh index and footer to OUT
                               (default IN.recovered)
  report OUT.html [opts]       render a self-contained HTML report (cost
                               plots, fitted curves, CDFs, bottleneck
                               verdicts); profile `--workload NAME` live,
                               or pass a saved TRACE file to replay
  bench [IDS|all] [opts]       regenerate the paper's tables and figures
                               (--jobs N shards measurements over N worker
                               threads; --list shows experiment ids)
  check FILES [opts]           statically verify and lint guest assembly
                               programs without running them; `--workloads`
                               also checks every bundled workload
  bound FILES [opts]           infer a static symbolic cost bound per
                               routine (Const, Log, Linear, Linearithmic,
                               Poly(k), Exponential, Unknown) by loop and
                               recursion analysis; stable `prog: routine:
                               bound` lines suit golden-file diffs
  fuzz [opts]                  generate a seeded corpus of guest programs
                               and run every one through the differential
                               oracles (naive-vs-engine, batched replay,
                               wire round-trip, static-vs-dynamic,
                               bound-vs-fit); failures are shrunk to a
                               minimal program
  serve --spool DIR [opts]     run the multi-tenant profiling service
                               daemon: concurrent wire-trace submissions
                               over unix/tcp sockets, per-tenant
                               aggregation and quotas, crash-safe spool,
                               live profile/report/obs.json endpoints
  submit --to TARGET [opts]    talk to a running daemon: submit TRACE
                               files, fetch profiles, reports, obs.json
                               and tenant listings, ping, shut down

options:
  --size N          workload size          (default 96)
  --threads T       worker threads         (default 4)
  --seed S          device seed            (default 0x5eed)
  --tool NAME       trms | rms | memcheck | callgrind | helgrind
                                           (default trms; rms profiles the
                                           thread-oblivious metric only)
  --policy P        full | external | thread | none   (default full)
  --cct             aggregate per calling context and show hot contexts
  --top N           routines/contexts to print        (default 10)
  --plot ROUTINE    ASCII worst-case cost plots (rms and trms) + fits
  --bottlenecks     rank routines by asymptotic-bottleneck severity
  --save-trace FILE record the event stream to FILE (text format)
  --chunk-bytes N   wire chunk payload target for `record` (default 65536)
  --durable         record: flush + fsync after every sealed chunk, so a
                    crash (even power loss) costs at most the open chunk;
                    `recover` restores such a capture losslessly
  --strict          replay: abort on corrupt chunks instead of skipping
  --profile-out FILE  replay: write the (merged) profile as canonical
                    text — the byte-stable format the service daemon
                    serves from its PROFILE endpoint
  --csv FILE        also write the routine summary as CSV to FILE
  --no-check        run/asm/record: skip the static verifier (which
                    otherwise refuses programs with hard errors)
  --report FILE     run/asm/record/replay: also write the HTML report
  --observe         enable profiler self-metrics (counters and tracing
                    spans); writes obs.json at exit and emits periodic
                    [obs] progress lines to stderr
  --obs-json FILE   where --observe writes its snapshot (implies
                    --observe; default obs.json)

check options:
  --deny-lints      treat warnings (W1xx) as rejections, like errors
  --races           also print static race candidates (N2xx notes)
  --workloads       verify every bundled workload program as well
  --bounds          also run the aprof-bound cost-bound inference and
                    print its B-code diagnostics (B301 inferred-bound
                    notes, B302-B304 analysis limits)
  --json            machine-readable diagnostics: one JSON object per
                    diagnostic (code, severity, span, message) on stdout;
                    verdict summaries move to stderr
  --explain CODE    print the extended explanation for a diagnostic code
                    (E001-E007, W101-W110, N201, B301-B306) and exit

bound options:
  --workloads       also infer bounds for every bundled workload program
  --workload NAME   add one bundled workload (repeatable)
  --diagnostics     print the B-code diagnostics rustc-style as well
  --json            one JSON object per routine instead of text lines

fuzz options:
  --seed N          base corpus seed                      (default 1)
  --cases K         generated programs to run             (default 256)
  --jobs J          worker threads (0 = all cores); the report is
                    byte-identical for every J            (default 0)
  --profile P       generator profile: mixed | sequential | concurrent |
                    kernel                                (default mixed)
  --faults          additionally run the crash/recover/replay differential
                    on every case (torn captures must salvage to exact
                    replayable prefixes)
  --mutate M        plant a profiler bug to test the harness itself:
                    drop-kernel-input | drop-read:N | scale-cost:N
                    (the sweep must then FAIL and shrink the reproducer)

serve options:
  --unix PATH       listen on a unix socket at PATH
  --tcp ADDR        listen on ADDR (host:port; port 0 picks one and the
                    daemon prints it)
  --spool DIR       durable spool directory (required); committed streams
                    are replayed from it on startup
  --max-in-flight N per-tenant concurrently decoding streams (default 8)
  --queue-timeout-ms N  how long a submission waits out backpressure
                    before a busy refusal             (default 10000)
  --max-events N    per-tenant aggregated-event quota (default unlimited)
  --max-spool-cells N  per-tenant spool quota in 8-byte cells
                                                      (default unlimited)
  --hard-quota      drop connections on quota refusal instead of replying
                    with a graceful ERR
  --fault-seed N    inject the seeded smoke fault plan into the ingest
                    path (soak testing)
  --stream-deadline-ms N  evict submissions still streaming after N ms
                    (slow-loris guard)                  (default 120000)
  --max-conns N     shed new work beyond N live connections with
                    `ERR busy retry-after`              (default 256)
  --spool-capacity-cells N  shed submissions once the whole spool holds
                    this many 8-byte cells              (default unlimited)
  --retry-after-ms N  the retry hint attached to busy refusals
                                                        (default 250)
  --breaker-failures N  tenant failures within the window that trip its
                    circuit breaker                     (default 5)
  --breaker-window-ms N  sliding failure window         (default 30000)
  --breaker-cooldown-ms N  quarantine before a half-open probe
                                                        (default 3000)
  the daemon serves until `submit --shutdown` (drain) or --shutdown-now

submit options:
  --to TARGET       unix:PATH | tcp:HOST:PORT          (required)
  --tenant NAME     tenant for submitted traces        (default: default)
  --stream NAME     stream id for a single submitted trace
                    (default: the trace file's stem; ids are idempotent —
                    resubmitting a committed id is a no-op duplicate)
  --profile TENANT  fetch the tenant's aggregate as canonical text
  --report TENANT   fetch the tenant's aggregate as an HTML report
  --obs             fetch the daemon's live obs.json
  --tenants         fetch the tenant listing
  --ping            health-check the daemon
  --out FILE        write fetched bodies to FILE instead of stdout
  --shutdown        ask the daemon to drain and stop
  --shutdown-now    ask the daemon to stop immediately
  --retries N       retry busy refusals and transport drops up to N extra
                    times with jittered backoff, honouring the daemon's
                    retry-after hint (idempotent: a stream that committed
                    before its ack was lost resolves as a duplicate)
                                                        (default 0)
  --retry-base-ms N base backoff window between retries (default 50)
  submit exit codes: 0 success; 1 fatal (bad trace, quota, quarantined,
  daemon unreachable); 2 usage; 75 still busy after the retry budget
  (EX_TEMPFAIL — reschedule and resubmit)
";

struct Opts {
    workload: Option<String>,
    size: u64,
    threads: u32,
    seed: u64,
    tool: String,
    policy: InputPolicy,
    cct: bool,
    bottlenecks: bool,
    top: usize,
    plot: Option<String>,
    save_trace: Option<String>,
    chunk_bytes: usize,
    durable: bool,
    strict: bool,
    profile_out: Option<String>,
    csv: Option<String>,
    no_check: bool,
    report: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        workload: None,
        size: 96,
        threads: 4,
        seed: 0x5eed,
        tool: "trms".into(),
        policy: InputPolicy::full(),
        cct: false,
        bottlenecks: false,
        top: 10,
        plot: None,
        save_trace: None,
        chunk_bytes: DEFAULT_CHUNK_BYTES,
        durable: false,
        strict: false,
        profile_out: None,
        csv: None,
        no_check: false,
        report: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--workload" => o.workload = Some(value("--workload")?),
            "--size" => o.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--threads" => {
                o.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--seed" => o.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--tool" => o.tool = value("--tool")?,
            "--policy" => {
                o.policy = match value("--policy")?.as_str() {
                    "full" => InputPolicy::full(),
                    "external" => InputPolicy::external_only(),
                    "thread" => InputPolicy::thread_only(),
                    "none" => InputPolicy::rms_only(),
                    other => return Err(format!("unknown policy `{other}`")),
                }
            }
            "--cct" => o.cct = true,
            "--bottlenecks" => o.bottlenecks = true,
            "--top" => o.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--plot" => o.plot = Some(value("--plot")?),
            "--save-trace" => o.save_trace = Some(value("--save-trace")?),
            "--chunk-bytes" => {
                o.chunk_bytes = value("--chunk-bytes")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--chunk-bytes needs a positive integer".to_string())?
            }
            "--durable" => o.durable = true,
            "--strict" => o.strict = true,
            "--profile-out" => o.profile_out = Some(value("--profile-out")?),
            "--csv" => o.csv = Some(value("--csv")?),
            "--no-check" => o.no_check = true,
            "--report" => o.report = Some(value("--report")?),
            // Consumed by `with_observe` before dispatch; accepted here so
            // they can sit anywhere on the command line.
            "--observe" => {}
            "--obs-json" => {
                value("--obs-json")?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => o.positional.push(other.to_owned()),
        }
    }
    Ok(o)
}

fn cmd_list() -> i32 {
    let mut table = Table::new(vec![
        "workload".into(),
        "family".into(),
        "description".into(),
    ]);
    for wl in all() {
        table.row(vec![
            wl.name.to_owned(),
            wl.family.label().to_owned(),
            wl.description.to_owned(),
        ]);
    }
    println!("{}", table.render());
    println!("tools: trms (default), rms, memcheck, callgrind, helgrind");
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(name) = opts.workload.clone() else {
        eprintln!("run requires --workload NAME (see `aprof-cli list`)");
        return 2;
    };
    let Some(wl) = by_name(&name) else {
        eprintln!("unknown workload `{name}` (see `aprof-cli list`)");
        return 2;
    };
    let params = WorkloadParams { size: opts.size, threads: opts.threads, seed: opts.seed };
    let machine = wl.build(&params);
    if !verifier_admits(machine.program(), &name, opts.no_check) {
        return 1;
    }
    drive(machine, &opts)
}

fn cmd_asm(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(path) = opts.positional.first() else {
        eprintln!("asm requires a FILE argument");
        return 2;
    };
    match machine_from_asm(path, opts.no_check) {
        Ok(machine) => drive(machine, &opts),
        Err(code) => code,
    }
}

/// Parses, verifies (unless `no_check`) and loads an assembly file.
fn machine_from_asm(path: &str, no_check: bool) -> Result<Machine, i32> {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return Err(1);
        }
    };
    let module = match asm::parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            eprint!("{}", aprof::check::render_parse_error(&e, &source, path));
            return Err(1);
        }
    };
    if !no_check {
        let report = aprof::check::check_module(&module);
        if report.has_errors() {
            for d in &report.diagnostics {
                if d.severity == aprof::check::Severity::Error {
                    eprint!("{}", d.render_source(&report.names, &module.map, &source, path));
                }
            }
            eprintln!(
                "{path}: rejected by the static verifier ({} errors); \
                 pass --no-check to run anyway",
                report.count(aprof::check::Severity::Error)
            );
            return Err(1);
        }
    }
    match module.into_program() {
        Ok(p) => Ok(Machine::new(p)),
        Err(e) => {
            eprintln!("{e}");
            Err(1)
        }
    }
}

/// The pre-run verifier gate for `run`/`record`: refuses programs with
/// hard errors unless `--no-check` was given. Lints never block a run.
fn verifier_admits(program: &aprof::vm::ir::Program, what: &str, no_check: bool) -> bool {
    if no_check {
        return true;
    }
    let report = aprof::check::check_program(program);
    if !report.has_errors() {
        return true;
    }
    for d in &report.diagnostics {
        if d.severity == aprof::check::Severity::Error {
            eprint!("{}", d.render(&report.names));
        }
    }
    eprintln!(
        "{what}: rejected by the static verifier ({} errors); \
         pass --no-check to run anyway",
        report.count(aprof::check::Severity::Error)
    );
    false
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One diagnostic as a single-line JSON object. The span carries the
/// `file:line` position when a source map is at hand, and always the IR
/// coordinate (function name, block, instruction).
fn diagnostic_json(
    program: &str,
    d: &aprof::check::Diagnostic,
    names: &[String],
    source: Option<(&aprof::vm::asm::SourceMap, &str)>,
) -> String {
    let func = names.get(d.func).map(String::as_str).unwrap_or("?");
    let line = source.and_then(|(map, _)| match d.block {
        Some(b) => map.line_of(d.func, b, d.instr),
        None => map.functions.get(d.func).map(|f| f.header_line),
    });
    let mut span = format!("\"func\": {}", json_str(func));
    if let Some(b) = d.block {
        span.push_str(&format!(", \"block\": {b}"));
    }
    if let Some(i) = d.instr {
        span.push_str(&format!(", \"instr\": {i}"));
    }
    if let Some(l) = line.filter(|&l| l > 0) {
        span.push_str(&format!(", \"file\": {}, \"line\": {l}", json_str(program)));
    }
    format!(
        "{{\"code\": {}, \"severity\": {}, \"program\": {}, \"span\": {{{span}}}, \"message\": {}}}",
        json_str(d.code),
        json_str(&d.severity.to_string()),
        json_str(program),
        json_str(&d.message)
    )
}

/// Runs the bound inference for one program and prints its diagnostics
/// (text or JSON); returns the report for further rendering.
fn print_bound_diagnostics(
    what: &str,
    functions: &[aprof::vm::ir::Function],
    names: &[String],
    json: bool,
    source: Option<(&aprof::vm::asm::SourceMap, &str)>,
) -> aprof::bound::BoundReport {
    let report = aprof::bound::infer_functions(functions);
    for d in &report.diagnostics {
        if json {
            println!("{}", diagnostic_json(what, d, names, source));
        } else if let Some((map, src)) = source {
            print!("{}", d.render_source(names, map, src, what));
        } else {
            print!("{}", d.render(names));
        }
    }
    report
}

fn cmd_check(args: &[String]) -> i32 {
    let mut deny_lints = false;
    let mut races = false;
    let mut workloads = false;
    let mut json = false;
    let mut bounds = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-lints" => deny_lints = true,
            "--races" => races = true,
            "--workloads" => workloads = true,
            "--json" => json = true,
            "--bounds" => bounds = true,
            "--explain" => {
                let Some(code) = it.next() else {
                    eprintln!("--explain requires a diagnostic CODE (e.g. W104)");
                    return 2;
                };
                return match aprof::check::explain(code) {
                    Some(text) => {
                        print!("{text}");
                        0
                    }
                    None => {
                        eprintln!(
                            "unknown diagnostic code `{code}`; known codes: {}",
                            aprof::check::CODES
                                .iter()
                                .map(|c| c.code)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        2
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return 2;
            }
            other => files.push(other),
        }
    }
    if files.is_empty() && !workloads {
        eprintln!("check requires assembly FILES and/or --workloads (or --explain CODE)");
        return 2;
    }
    let mut failed = false;
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match asm::parse_module(&source) {
            Err(e) => {
                if json {
                    println!(
                        "{{\"code\": \"E001\", \"severity\": \"error\", \"program\": {}, \
                         \"span\": {{\"line\": {}}}, \"message\": {}}}",
                        json_str(path),
                        e.line,
                        json_str(&e.message)
                    );
                    eprintln!("{path}: rejected (parse error)");
                } else {
                    print!("{}", aprof::check::render_parse_error(&e, &source, path));
                    println!("{path}: rejected (parse error)");
                }
                failed = true;
            }
            Ok(module) => {
                let report = aprof::check::check_module(&module);
                if json {
                    for d in &report.diagnostics {
                        if d.severity == aprof::check::Severity::Note && !races {
                            continue;
                        }
                        println!(
                            "{}",
                            diagnostic_json(path, d, &report.names, Some((&module.map, &source)))
                        );
                    }
                    failed |= report.rejects(deny_lints);
                    eprintln!(
                        "{path}: {}",
                        if report.rejects(deny_lints) { "rejected" } else { "ok" }
                    );
                } else {
                    failed |=
                        print_check_report(path, &report, deny_lints, races, |d| {
                            d.render_source(&report.names, &module.map, &source, path)
                        });
                }
                if bounds && !report.has_errors() {
                    print_bound_diagnostics(
                        path,
                        &module.functions,
                        &report.names,
                        json,
                        Some((&module.map, &source)),
                    );
                }
            }
        }
    }
    if workloads {
        let params = WorkloadParams { size: 96, threads: 4, seed: 0x5eed };
        for wl in all() {
            let machine = wl.build(&params);
            let report = aprof::check::check_program(machine.program());
            if json {
                for d in &report.diagnostics {
                    if d.severity == aprof::check::Severity::Note && !races {
                        continue;
                    }
                    println!("{}", diagnostic_json(wl.name, d, &report.names, None));
                }
                failed |= report.rejects(deny_lints);
                eprintln!(
                    "{}: {}",
                    wl.name,
                    if report.rejects(deny_lints) { "rejected" } else { "ok" }
                );
            } else {
                failed |= print_check_report(wl.name, &report, deny_lints, races, |d| {
                    d.render(&report.names)
                });
            }
            if bounds && !report.has_errors() {
                print_bound_diagnostics(
                    wl.name,
                    machine.program().functions(),
                    &report.names,
                    json,
                    None,
                );
            }
        }
    }
    if failed {
        1
    } else {
        0
    }
}

fn cmd_bound(args: &[String]) -> i32 {
    let mut workloads = false;
    let mut picked: Vec<&str> = Vec::new();
    let mut diagnostics = false;
    let mut json = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => workloads = true,
            "--workload" => {
                let Some(name) = it.next() else {
                    eprintln!("--workload requires a NAME");
                    return 2;
                };
                picked.push(name);
            }
            "--diagnostics" => diagnostics = true,
            "--json" => json = true,
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return 2;
            }
            other => files.push(other),
        }
    }
    if files.is_empty() && !workloads && picked.is_empty() {
        eprintln!("bound requires assembly FILES, --workload NAME, and/or --workloads");
        return 2;
    }

    // Stable output: one `program: routine: bound` line per routine, in
    // function order — the format CI diffs against committed golden files.
    let print_report = |what: &str, report: &aprof::bound::BoundReport| {
        for rb in &report.bounds {
            if json {
                println!(
                    "{{\"program\": {}, \"routine\": {}, \"bound\": {}, \"recursive\": {}}}",
                    json_str(what),
                    json_str(&rb.name),
                    json_str(&rb.bound.notation()),
                    rb.recursive
                );
            } else {
                println!(
                    "{what}: {}: {}{}",
                    rb.name,
                    rb.bound.notation(),
                    if rb.recursive { " (recursive)" } else { "" }
                );
            }
        }
    };

    let mut failed = false;
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let module = match asm::parse_module(&source) {
            Ok(m) => m,
            Err(e) => {
                print!("{}", aprof::check::render_parse_error(&e, &source, path));
                eprintln!("{path}: rejected (parse error)");
                failed = true;
                continue;
            }
        };
        let check = aprof::check::check_module(&module);
        if check.has_errors() {
            for d in &check.diagnostics {
                if d.severity == aprof::check::Severity::Error {
                    print!("{}", d.render_source(&check.names, &module.map, &source, path));
                }
            }
            eprintln!("{path}: rejected by the static verifier; bounds not inferred");
            failed = true;
            continue;
        }
        let report = if diagnostics {
            print_bound_diagnostics(
                path,
                &module.functions,
                &check.names,
                json,
                Some((&module.map, &source)),
            )
        } else {
            aprof::bound::infer_functions(&module.functions)
        };
        print_report(path, &report);
    }

    let params = WorkloadParams { size: 96, threads: 4, seed: 0x5eed };
    let selected: Vec<_> = if workloads {
        all().into_iter().collect()
    } else {
        let mut sel = Vec::new();
        for name in &picked {
            match by_name(name) {
                Some(wl) => sel.push(wl),
                None => {
                    eprintln!("unknown workload `{name}` (see `aprof-cli list`)");
                    return 2;
                }
            }
        }
        sel
    };
    for wl in selected {
        let machine = wl.build(&params);
        let names: Vec<String> =
            machine.program().functions().iter().map(|f| f.name.clone()).collect();
        let report = if diagnostics {
            print_bound_diagnostics(wl.name, machine.program().functions(), &names, json, None)
        } else {
            aprof::bound::infer_functions(machine.program().functions())
        };
        print_report(wl.name, &report);
    }
    if failed {
        1
    } else {
        0
    }
}

/// Prints one program's diagnostics and verdict line; true if rejected.
fn print_check_report(
    what: &str,
    report: &aprof::check::CheckReport,
    deny_lints: bool,
    races: bool,
    render: impl Fn(&aprof::check::Diagnostic) -> String,
) -> bool {
    use aprof::check::Severity;
    for d in &report.diagnostics {
        if d.severity == Severity::Note && !races {
            continue;
        }
        print!("{}", render(d));
    }
    let (e, w, n) =
        (report.count(Severity::Error), report.count(Severity::Warning), report.count(Severity::Note));
    let rejected = report.rejects(deny_lints);
    let verdict = if rejected { "rejected" } else { "ok" };
    println!(
        "{what}: {verdict} ({e} errors, {w} warnings, {n} notes; \
         {} functions, {} blocks, {} instrs)",
        report.stats.functions, report.stats.blocks, report.stats.instrs
    );
    if races && !report.races.is_empty() {
        println!(
            "{what}: {} race-candidate location(s); cells {:?}{}",
            report.races.groups,
            report.races.cells,
            if report.races.dynamic_regions { " plus dynamic regions" } else { "" }
        );
    }
    rejected
}

/// Opens a saved trace and tells wire traces apart from text ones by the
/// leading magic. The returned reader is positioned at byte 0.
fn open_trace(path: &str) -> Result<(BufReader<File>, bool), String> {
    let mut file = File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut magic = [0u8; 8];
    let is_wire = match file.read_exact(&mut magic) {
        Ok(()) => &magic == aprof::wire::format::MAGIC,
        Err(_) => false, // shorter than any wire header: treat as text
    };
    file.seek(SeekFrom::Start(0)).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((BufReader::new(file), is_wire))
}

fn cmd_record(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(path) = opts.positional.first() else {
        eprintln!("record requires an output FILE argument");
        return 2;
    };
    let machine = if let Some(name) = opts.workload.clone() {
        let Some(wl) = by_name(&name) else {
            eprintln!("unknown workload `{name}` (see `aprof-cli list`)");
            return 2;
        };
        let params = WorkloadParams { size: opts.size, threads: opts.threads, seed: opts.seed };
        let machine = wl.build(&params);
        if !verifier_admits(machine.program(), &name, opts.no_check) {
            return 1;
        }
        machine
    } else if let Some(asm_path) = opts.positional.get(1).cloned() {
        match machine_from_asm(&asm_path, opts.no_check) {
            Ok(m) => m,
            Err(code) => return code,
        }
    } else {
        eprintln!("record requires --workload NAME or an assembly FILE (see `aprof-cli list`)");
        return 2;
    };
    let names = machine.program().routines().clone();
    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    };
    let flush = if opts.durable { FlushPolicy::Durable } else { FlushPolicy::OnFinish };
    let options = WireOptions { chunk_bytes: opts.chunk_bytes, flush };
    if opts.durable {
        // Durable capture: every sealed chunk is flushed *and* fsynced, so
        // a crash at any moment costs at most the currently open chunk.
        drive_record(machine, &names, &opts, path, BufWriter::new(DurableFile::new(file)), options)
    } else {
        drive_record(machine, &names, &opts, path, BufWriter::new(file), options)
    }
}

/// The recording loop of `cmd_record`, generic over the sink so the
/// durable and plain paths share one implementation.
fn drive_record<W: std::io::Write>(
    mut machine: Machine,
    names: &RoutineTable,
    opts: &Opts,
    path: &str,
    sink: W,
    options: WireOptions,
) -> i32 {
    let mut writer = match WireWriter::create(sink, names, options) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    };
    let bounds = opts.report.as_ref().map(|_| bound_notations(machine.program()));
    let mut profiler = build_profiler(opts);
    if let Err(e) = machine.run_recording(&mut profiler, &mut writer) {
        eprintln!("guest error: {e}");
        return 1;
    }
    match writer.finish() {
        Ok((_, s)) => println!(
            "recorded {} events in {} chunks ({} bytes, {} threads) to {path}",
            s.events, s.chunks, s.bytes, s.threads
        ),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    }
    report_profiler(profiler, names, opts, bounds.as_ref());
    0
}

fn cmd_recover(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(input) = opts.positional.first() else {
        eprintln!("recover requires an input FILE argument");
        return 2;
    };
    let out_path =
        opts.positional.get(1).cloned().unwrap_or_else(|| format!("{input}.recovered"));
    let infile = match File::open(input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return 1;
        }
    };
    let outfile = match File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            return 1;
        }
    };
    match recover(BufReader::new(infile), BufWriter::new(outfile)) {
        Ok(s) => {
            println!(
                "salvaged {} chunks, {} events, {} threads ({} input bytes kept) \
                 to {out_path} ({} bytes)",
                s.chunks, s.events, s.threads, s.salvaged_bytes, s.output_bytes
            );
            if s.was_intact() {
                println!("input was already intact");
            } else {
                println!("scan stopped: {}", s.stopped);
            }
            0
        }
        Err(e) => {
            eprintln!("cannot recover {input}: {e} (the header is required; only chunk \
                       damage is recoverable)");
            1
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    if opts.positional.is_empty() {
        eprintln!("replay requires at least one FILE argument");
        return 2;
    }
    // Several traces (or an explicit `--profile-out`) take the merge path:
    // replay each wire trace, then merge in argument order — pass traces
    // in sorted stream-id order to match a service tenant's aggregate.
    if opts.positional.len() > 1 || opts.profile_out.is_some() {
        return replay_merged(&opts);
    }
    let path = &opts.positional[0];
    let (file, is_wire) = match open_trace(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if is_wire {
        // Wire traces stream chunk-by-chunk: the profile is computed in
        // O(chunk) memory and routine names come from the embedded table.
        let mut reader = match WireReader::new(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        if opts.strict {
            reader = reader.strict();
        }
        let names = reader.routines().clone();
        let mut profiler = build_profiler(&opts);
        if let Err(e) = profiler.consume_stream(&mut reader) {
            eprintln!("{e}");
            return 1;
        }
        for skipped in reader.skipped() {
            eprintln!("warning: skipped corrupt {skipped}");
        }
        report_profiler(profiler, &names, &opts, None);
    } else {
        let trace = match textio::from_reader(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        // Routine names are not part of the text format; placeholder ids.
        let names = RoutineTable::new();
        let mut profiler = build_profiler(&opts);
        trace.replay(&mut profiler);
        report_profiler(profiler, &names, &opts, None);
    }
    0
}

/// The merge path of `cmd_replay`: one profile per wire trace, merged in
/// argument order. `ProfileReport::merge` is also what a service tenant's
/// aggregate uses, so replaying a tenant's spooled streams in sorted
/// stream-id order reproduces its `PROFILE` endpoint byte for byte.
fn replay_merged(opts: &Opts) -> i32 {
    let mut reports = Vec::new();
    for path in &opts.positional {
        let (file, is_wire) = match open_trace(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        if !is_wire {
            eprintln!("{path}: profile merging requires wire traces (the text format carries no routine names)");
            return 1;
        }
        let mut reader = match WireReader::new(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return 1;
            }
        };
        if opts.strict {
            reader = reader.strict();
        }
        let names = reader.routines().clone();
        let mut profiler = build_profiler(opts);
        if let Err(e) = profiler.consume_stream(&mut reader) {
            eprintln!("{path}: {e}");
            return 1;
        }
        for skipped in reader.skipped() {
            eprintln!("warning: {path}: skipped corrupt {skipped}");
        }
        reports.push(profiler.into_report(&names));
    }
    let merged = ProfileReport::merge(&reports);
    print_summary(&merged, opts);
    if let Some(path) = &opts.profile_out {
        match std::fs::write(path, merged.to_canonical_text()) {
            Ok(()) => println!("wrote canonical profile to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &opts.report {
        write_html_report(&merged, "merged replay", path, opts.top, None);
    }
    0
}

fn cmd_report(args: &[String]) -> i32 {
    let mut opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(out) = opts.positional.first().cloned() else {
        eprintln!("report requires an output HTML file argument");
        return 2;
    };
    opts.report = Some(out);
    if let Some(name) = opts.workload.clone() {
        // Live run: profile the workload under trms, then render.
        let Some(wl) = by_name(&name) else {
            eprintln!("unknown workload `{name}` (see `aprof-cli list`)");
            return 2;
        };
        let params = WorkloadParams { size: opts.size, threads: opts.threads, seed: opts.seed };
        let mut machine = wl.build(&params);
        if !verifier_admits(machine.program(), &name, opts.no_check) {
            return 1;
        }
        let names = machine.program().routines().clone();
        let bounds = bound_notations(machine.program());
        let mut profiler = build_profiler(&opts);
        if let Err(e) = machine.run_with(&mut profiler) {
            eprintln!("guest error: {e}");
            return 1;
        }
        report_profiler(profiler, &names, &opts, Some(&bounds));
        return 0;
    }
    // Offline: render from a previously saved trace.
    let Some(path) = opts.positional.get(1).cloned() else {
        eprintln!("report requires --workload NAME or a saved TRACE file");
        return 2;
    };
    let (file, is_wire) = match open_trace(&path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if is_wire {
        let mut reader = match WireReader::new(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        if opts.strict {
            reader = reader.strict();
        }
        let names = reader.routines().clone();
        let mut profiler = build_profiler(&opts);
        if let Err(e) = profiler.consume_stream(&mut reader) {
            eprintln!("{e}");
            return 1;
        }
        for skipped in reader.skipped() {
            eprintln!("warning: skipped corrupt {skipped}");
        }
        report_profiler(profiler, &names, &opts, None);
    } else {
        let trace = match textio::from_reader(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        let names = RoutineTable::new();
        let mut profiler = build_profiler(&opts);
        trace.replay(&mut profiler);
        report_profiler(profiler, &names, &opts, None);
    }
    0
}

fn cmd_trace_info(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    };
    let Some(path) = opts.positional.first() else {
        eprintln!("trace-info requires a FILE argument");
        return 2;
    };
    let (file, is_wire) = match open_trace(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let mut by_kind = std::collections::BTreeMap::new();
    if is_wire {
        let mut reader = match WireReader::new(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        if opts.strict {
            reader = reader.strict();
        }
        println!("format: wire v{}", reader.version());
        println!("routines: {}", reader.routines().len());
        for item in reader.by_ref() {
            match item {
                Ok((_, event)) => *by_kind.entry(event.kind()).or_insert(0u64) += 1,
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            }
        }
        let stats = reader.stats();
        println!("events: {}", stats.events);
        println!("chunks: {} decoded, {} skipped", stats.chunks, stats.chunks_skipped);
        if let Some(index) = reader.index() {
            println!("threads: {}", index.thread_count);
        }
        println!("file bytes: {}", stats.bytes_read);
        println!("peak chunk bytes: {}", stats.peak_chunk_bytes);
        print_kind_counts(&by_kind);
        for skipped in reader.skipped() {
            println!("skipped corrupt {skipped}");
        }
        if !reader.skipped().is_empty() {
            return 1;
        }
    } else {
        let trace = match textio::from_reader(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        let stats = trace.stats();
        println!("format: text");
        println!("events: {}", stats.events);
        println!("threads: {}", stats.threads);
        by_kind = stats.by_kind;
        print_kind_counts(&by_kind);
    }
    0
}

fn print_kind_counts(by_kind: &std::collections::BTreeMap<EventKind, u64>) {
    for (kind, count) in by_kind {
        println!("  {kind:?}: {count}");
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let mut selected: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for id in aprof::bench::EXPERIMENTS {
                    println!("{id}");
                }
                return 0;
            }
            "--jobs" | "-j" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer");
                    return 2;
                };
                aprof::bench::set_jobs(n);
            }
            // Consumed by `with_observe` before dispatch.
            "--observe" => {}
            "--obs-json" => {
                it.next();
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return 2;
            }
            other => selected.push(other),
        }
    }
    if selected.is_empty() || selected.contains(&"all") {
        selected = aprof::bench::EXPERIMENTS.to_vec();
    }
    match aprof::bench::run_experiments(&selected) {
        Ok(outputs) => {
            for output in outputs {
                println!("{}\n", output.title);
                println!("{}", output.text);
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_serve(args: &[String]) -> i32 {
    let mut cfg: Option<ServeConfig> = None;
    let mut unix: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut max_in_flight = 8usize;
    let mut queue_timeout_ms = 10_000u64;
    let mut max_events = u64::MAX;
    let mut max_spool_cells = u64::MAX;
    let mut hard_quota = false;
    let mut fault_seed: Option<u64> = None;
    let mut stream_deadline_ms: Option<u64> = None;
    let mut max_conns: Option<usize> = None;
    let mut spool_capacity_cells: Option<u64> = None;
    let mut retry_after_ms: Option<u64> = None;
    let mut breaker_failures: Option<u32> = None;
    let mut breaker_window_ms: Option<u64> = None;
    let mut breaker_cooldown_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{flag} needs a value"))
        };
        let parsed = match a.as_str() {
            "--spool" => value("--spool").map(|v| cfg = Some(ServeConfig::new(v))),
            "--unix" => value("--unix").map(|v| unix = Some(v)),
            "--tcp" => value("--tcp").map(|v| tcp = Some(v)),
            "--max-in-flight" => value("--max-in-flight")
                .and_then(|v| v.parse().map_err(|e| format!("--max-in-flight: {e}")))
                .map(|v| max_in_flight = v),
            "--queue-timeout-ms" => value("--queue-timeout-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--queue-timeout-ms: {e}")))
                .map(|v| queue_timeout_ms = v),
            "--max-events" => value("--max-events")
                .and_then(|v| v.parse().map_err(|e| format!("--max-events: {e}")))
                .map(|v| max_events = v),
            "--max-spool-cells" => value("--max-spool-cells")
                .and_then(|v| v.parse().map_err(|e| format!("--max-spool-cells: {e}")))
                .map(|v| max_spool_cells = v),
            "--hard-quota" => {
                hard_quota = true;
                Ok(())
            }
            "--fault-seed" => value("--fault-seed")
                .and_then(|v| v.parse().map_err(|e| format!("--fault-seed: {e}")))
                .map(|v| fault_seed = Some(v)),
            "--stream-deadline-ms" => value("--stream-deadline-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--stream-deadline-ms: {e}")))
                .map(|v| stream_deadline_ms = Some(v)),
            "--max-conns" => value("--max-conns")
                .and_then(|v| v.parse().map_err(|e| format!("--max-conns: {e}")))
                .map(|v| max_conns = Some(v)),
            "--spool-capacity-cells" => value("--spool-capacity-cells")
                .and_then(|v| v.parse().map_err(|e| format!("--spool-capacity-cells: {e}")))
                .map(|v| spool_capacity_cells = Some(v)),
            "--retry-after-ms" => value("--retry-after-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--retry-after-ms: {e}")))
                .map(|v| retry_after_ms = Some(v)),
            "--breaker-failures" => value("--breaker-failures")
                .and_then(|v| v.parse().map_err(|e| format!("--breaker-failures: {e}")))
                .map(|v| breaker_failures = Some(v)),
            "--breaker-window-ms" => value("--breaker-window-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--breaker-window-ms: {e}")))
                .map(|v| breaker_window_ms = Some(v)),
            "--breaker-cooldown-ms" => value("--breaker-cooldown-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--breaker-cooldown-ms: {e}")))
                .map(|v| breaker_cooldown_ms = Some(v)),
            // Consumed by `with_observe` before dispatch.
            "--observe" => Ok(()),
            "--obs-json" => value("--obs-json").map(|_| ()),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let Some(mut cfg) = cfg else {
        eprintln!("serve requires --spool DIR");
        return 2;
    };
    cfg.unix = unix.clone().map(Into::into);
    cfg.tcp = tcp;
    cfg.max_in_flight = max_in_flight;
    cfg.queue_timeout = std::time::Duration::from_millis(queue_timeout_ms);
    cfg.quota = ResourceLimits {
        max_instructions: max_events,
        max_alloc_cells: max_spool_cells,
        trap: !hard_quota,
    };
    cfg.faults = fault_seed.map(FaultConfig::smoke);
    if let Some(ms) = stream_deadline_ms {
        cfg.stream_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = max_conns {
        cfg.shed.max_active_conns = n;
    }
    if let Some(n) = spool_capacity_cells {
        cfg.shed.spool_capacity_cells = n;
    }
    if let Some(ms) = retry_after_ms {
        cfg.shed.retry_after = std::time::Duration::from_millis(ms);
    }
    let defaults = BreakerConfig::default();
    cfg.breaker = BreakerConfig {
        failures: breaker_failures.unwrap_or(defaults.failures),
        window: breaker_window_ms
            .map_or(defaults.window, std::time::Duration::from_millis),
        cooldown: breaker_cooldown_ms
            .map_or(defaults.cooldown, std::time::Duration::from_millis),
    };
    // The daemon always self-observes: its obs.json endpoint is live even
    // without --observe (which additionally writes a snapshot at exit).
    aprof::obs::enable();
    let spool = cfg.spool.clone();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return 1;
        }
    };
    for (path, e) in &server.damaged {
        eprintln!("warning: damaged spool file {}: {e}", path.display());
    }
    println!("aprof-serve: spool {}", spool.display());
    if let Some(path) = &unix {
        println!("listening on unix:{path}");
    }
    if let Some(addr) = server.tcp_addr() {
        println!("listening on tcp:{addr}");
    }
    println!("ready (stop with `aprof-cli submit --to TARGET --shutdown`)");
    match server.wait() {
        Ok(()) => {
            println!("daemon stopped");
            0
        }
        Err(e) => {
            eprintln!("daemon error: {e}");
            1
        }
    }
}

fn cmd_submit(args: &[String]) -> i32 {
    let mut to: Option<String> = None;
    let mut tenant = "default".to_owned();
    let mut stream: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut report: Option<String> = None;
    let mut out: Option<String> = None;
    let mut want_obs = false;
    let mut want_tenants = false;
    let mut want_ping = false;
    let mut shutdown: Option<bool> = None;
    let mut retries = 0u32;
    let mut retry_base_ms = 50u64;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{flag} needs a value"))
        };
        let parsed = match a.as_str() {
            "--to" => value("--to").map(|v| to = Some(v)),
            "--tenant" => value("--tenant").map(|v| tenant = v),
            "--stream" => value("--stream").map(|v| stream = Some(v)),
            "--profile" => value("--profile").map(|v| profile = Some(v)),
            "--report" => value("--report").map(|v| report = Some(v)),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--obs" => {
                want_obs = true;
                Ok(())
            }
            "--tenants" => {
                want_tenants = true;
                Ok(())
            }
            "--ping" => {
                want_ping = true;
                Ok(())
            }
            "--shutdown" => {
                shutdown = Some(false);
                Ok(())
            }
            "--shutdown-now" => {
                shutdown = Some(true);
                Ok(())
            }
            "--retries" => value("--retries")
                .and_then(|v| v.parse().map_err(|e| format!("--retries: {e}")))
                .map(|v| retries = v),
            "--retry-base-ms" => value("--retry-base-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--retry-base-ms: {e}")))
                .map(|v| retry_base_ms = v),
            // Consumed by `with_observe` before dispatch.
            "--observe" => Ok(()),
            "--obs-json" => value("--obs-json").map(|_| ()),
            other if other.starts_with("--") => Err(format!("unknown option `{other}`")),
            other => {
                files.push(other.to_owned());
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let Some(to) = to else {
        eprintln!("submit requires --to unix:PATH | tcp:HOST:PORT");
        return 2;
    };
    let target: Target = match to.parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if stream.is_some() && files.len() > 1 {
        eprintln!("--stream names a single trace; submitting several derives ids from file stems");
        return 2;
    }
    if files.is_empty() && profile.is_none() && report.is_none() && !want_obs && !want_tenants
        && !want_ping && shutdown.is_none()
    {
        eprintln!("submit: nothing to do (pass TRACE files or a query flag)");
        return 2;
    }
    if want_ping {
        if let Err(e) = serve_client::ping(&target) {
            eprintln!("ping failed: {e}");
            return 1;
        }
        println!("pong");
    }
    for path in &files {
        let stream_id = match &stream {
            Some(s) => s.clone(),
            None => {
                let Some(stem) = std::path::Path::new(path).file_stem().and_then(|s| s.to_str())
                else {
                    eprintln!("{path}: cannot derive a stream id; pass --stream NAME");
                    return 2;
                };
                stem.to_owned()
            }
        };
        let policy = RetryPolicy {
            attempts: retries.saturating_add(1),
            base: std::time::Duration::from_millis(retry_base_ms),
            ..RetryPolicy::default()
        };
        let open = || {
            File::open(path).map(BufReader::new).map_err(|e| {
                ServeError::Io(std::io::Error::new(
                    e.kind(),
                    format!("cannot read {path}: {e}"),
                ))
            })
        };
        match serve_client::submit_retrying(&target, &tenant, &stream_id, &policy, open) {
            Ok(ack) if ack.duplicate => {
                println!("{tenant}/{stream_id}: already committed (duplicate)");
            }
            Ok(ack) => {
                println!(
                    "{tenant}/{stream_id}: committed {} events in {} chunks",
                    ack.events, ack.chunks
                );
            }
            // Transient backpressure that outlived the retry budget: a
            // deliberate exit code (EX_TEMPFAIL) so wrappers can reschedule
            // instead of treating it as data loss.
            Err(e @ ServeError::Busy { .. }) => {
                eprintln!("{tenant}/{stream_id}: {e} (daemon is shedding load; try --retries)");
                return 75;
            }
            Err(e) => {
                eprintln!("{tenant}/{stream_id}: {e}");
                return 1;
            }
        }
    }
    let mut fetched: Vec<(String, String)> = Vec::new();
    if let Some(t) = &profile {
        match serve_client::fetch_profile(&target, t) {
            Ok(text) => fetched.push((format!("profile {t}"), text)),
            Err(e) => {
                eprintln!("profile {t}: {e}");
                return 1;
            }
        }
    }
    if let Some(t) = &report {
        match serve_client::fetch_report(&target, t) {
            Ok(text) => fetched.push((format!("report {t}"), text)),
            Err(e) => {
                eprintln!("report {t}: {e}");
                return 1;
            }
        }
    }
    if want_obs {
        match serve_client::fetch_obs(&target) {
            Ok(text) => fetched.push(("obs.json".to_owned(), text)),
            Err(e) => {
                eprintln!("obs: {e}");
                return 1;
            }
        }
    }
    if want_tenants {
        match serve_client::fetch_tenants(&target) {
            Ok(text) => fetched.push(("tenants".to_owned(), text)),
            Err(e) => {
                eprintln!("tenants: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &out {
        let body: String = fetched.into_iter().map(|(_, text)| text).collect();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("wrote fetched output to {path}");
    } else {
        for (_what, text) in &fetched {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
        }
    }
    if let Some(now) = shutdown {
        if let Err(e) = serve_client::shutdown(&target, now) {
            eprintln!("shutdown: {e}");
            return 1;
        }
        println!("shutdown requested ({})", if now { "immediate" } else { "drain" });
    }
    0
}

/// Parses `--mutate` values: `drop-kernel-input`, `drop-read:N`,
/// `scale-cost:N`.
fn parse_mutation(value: &str) -> Result<aprof::corpus::Mutation, String> {
    use aprof::corpus::Mutation;
    if value == "drop-kernel-input" {
        return Ok(Mutation::DropKernelInput);
    }
    if let Some(n) = value.strip_prefix("drop-read:") {
        let n: u64 = n.parse().map_err(|e| format!("--mutate {value}: {e}"))?;
        if n == 0 {
            return Err("--mutate drop-read:N needs N >= 1".into());
        }
        return Ok(Mutation::DropEveryNthRead(n));
    }
    if let Some(n) = value.strip_prefix("scale-cost:") {
        let n: u64 = n.parse().map_err(|e| format!("--mutate {value}: {e}"))?;
        if n == 0 {
            return Err("--mutate scale-cost:N needs N >= 1".into());
        }
        return Ok(Mutation::ScaleNthCost(n));
    }
    Err(format!(
        "unknown mutation `{value}` (drop-kernel-input | drop-read:N | scale-cost:N)"
    ))
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let mut config = aprof::corpus::FuzzConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{flag} needs a value"))
        };
        let parsed = match a.as_str() {
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .map(|v| config.seed = v),
            "--cases" => value("--cases")
                .and_then(|v| v.parse().map_err(|e| format!("--cases: {e}")))
                .map(|v| config.cases = v),
            "--jobs" | "-j" => value("--jobs")
                .and_then(|v| v.parse().map_err(|e| format!("--jobs: {e}")))
                .map(|v| config.jobs = v),
            "--profile" => value("--profile").and_then(|v| {
                aprof::corpus::GenConfig::by_name(&v)
                    .map(|p| config.profile = p)
                    .ok_or(format!("unknown profile `{v}` (mixed | sequential | concurrent | kernel)"))
            }),
            "--faults" => {
                config.faults = true;
                Ok(())
            }
            "--mutate" => value("--mutate")
                .and_then(|v| parse_mutation(&v))
                .map(|m| config.mutation = Some(m)),
            // Consumed by `with_observe` before dispatch.
            "--observe" => Ok(()),
            "--obs-json" => value("--obs-json").map(|_| ()),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let outcome = aprof::corpus::run_fuzz(&config);
    println!("{}", outcome.report);
    if outcome.failures.is_empty() {
        0
    } else {
        1
    }
}

fn build_profiler(opts: &Opts) -> TrmsProfiler {
    // `--tool rms` profiles the thread-oblivious metric regardless of the
    // selected policy: rms is exactly the trms under the rms-only policy.
    let policy = if matches!(opts.tool.as_str(), "rms" | "rms-only") {
        InputPolicy::rms_only()
    } else {
        opts.policy
    };
    TrmsProfiler::builder().policy(policy).calling_contexts(opts.cct).build()
}

fn drive(mut machine: Machine, opts: &Opts) -> i32 {
    let names = machine.program().routines().clone();
    let bounds = opts.report.as_ref().map(|_| bound_notations(machine.program()));
    if let Some(path) = &opts.save_trace {
        let mut rec = RecordingTool::new();
        if let Err(e) = machine.run_with(&mut rec) {
            eprintln!("guest error: {e}");
            return 1;
        }
        let mut trace = Trace::new();
        for e in rec.trace() {
            trace.push(e.thread, e.event);
        }
        if let Err(e) = std::fs::write(path, textio::to_text(&trace)) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("saved {} events to {path}", trace.len());
        let mut profiler = build_profiler(opts);
        trace.replay(&mut profiler);
        report_profiler(profiler, &names, opts, bounds.as_ref());
        return 0;
    }
    match opts.tool.as_str() {
        "trms" | "rms" | "rms-only" => {
            let mut profiler = build_profiler(opts);
            if let Err(e) = machine.run_with(&mut profiler) {
                eprintln!("guest error: {e}");
                return 1;
            }
            report_profiler(profiler, &names, opts, bounds.as_ref());
            0
        }
        "memcheck" => {
            let mut tool = MemcheckTool::new();
            if let Err(e) = machine.run_with(&mut tool) {
                eprintln!("guest error: {e}");
                return 1;
            }
            let r = tool.report();
            println!(
                "memcheck: {} reads of undefined cells ({} distinct cells), {} shadow bytes",
                r.undefined_reads, r.distinct_cells, r.shadow_bytes
            );
            0
        }
        "callgrind" => {
            let mut tool = CallgrindTool::new();
            if let Err(e) = machine.run_with(&mut tool) {
                eprintln!("guest error: {e}");
                return 1;
            }
            let report = tool.into_report(&names);
            let mut table = Table::new(vec![
                "routine".into(),
                "calls".into(),
                "exclusive".into(),
                "inclusive".into(),
            ]);
            for (name, costs) in report.hottest().into_iter().take(opts.top) {
                table.row(vec![
                    name.to_owned(),
                    costs.calls.to_string(),
                    costs.exclusive.to_string(),
                    costs.inclusive.to_string(),
                ]);
            }
            println!("{}", table.render());
            0
        }
        "helgrind" => {
            let mut tool = HelgrindTool::new();
            if let Err(e) = machine.run_with(&mut tool) {
                eprintln!("guest error: {e}");
                return 1;
            }
            let r = tool.report();
            println!("helgrind: {} racy accesses on {} cells", r.races, r.racy_cells);
            0
        }
        other => {
            eprintln!("unknown tool `{other}`");
            2
        }
    }
}

/// Writes the self-contained HTML report. The self-metrics section is
/// filled only when the run was observed (`--observe`).
fn write_html_report(
    report: &ProfileReport,
    title: &str,
    path: &str,
    top: usize,
    bounds: Option<&std::collections::BTreeMap<String, String>>,
) {
    let snap = aprof::obs::is_enabled().then(aprof::obs::snapshot);
    let html = aprof::analysis::render_report(&ReportInputs {
        report,
        title,
        obs: snap.as_ref(),
        top,
        bounds,
    });
    match std::fs::write(path, html) {
        Ok(()) => println!("wrote HTML report to {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Routine-name → static bound notation (`aprof-bound`) for the HTML
/// report's "static bound" column. Only run paths have a guest program;
/// trace-replay paths render the column as em-dashes.
fn bound_notations(program: &aprof::vm::ir::Program) -> std::collections::BTreeMap<String, String> {
    aprof::bound::infer_program(program)
        .bounds
        .into_iter()
        .map(|b| {
            let mut s = b.bound.notation();
            if b.recursive {
                s.push_str(" (recursive)");
            }
            (b.name, s)
        })
        .collect()
}

fn report_profiler(
    profiler: TrmsProfiler,
    names: &RoutineTable,
    opts: &Opts,
    bounds: Option<&std::collections::BTreeMap<String, String>>,
) {
    let (report, cct) = profiler.into_report_and_cct(names);
    print_summary(&report, opts);
    if let Some(path) = &opts.report {
        // Title the page after the workload, else the first non-output
        // positional (the trace or assembly file), else a generic label.
        let title = opts
            .workload
            .clone()
            .or_else(|| {
                opts.positional
                    .iter()
                    .find(|p| Some(p.as_str()) != opts.report.as_deref())
                    .cloned()
            })
            .unwrap_or_else(|| "run".into());
        write_html_report(&report, &title, path, opts.top, bounds);
    }
    if opts.bottlenecks {
        let entries = aprof::analysis::bottleneck::analyze(&report);
        println!("asymptotic bottleneck analysis:");
        println!("{}", aprof::analysis::bottleneck::render(&entries, opts.top));
    }
    if let Some(routine) = &opts.plot {
        match report.routine_by_name(routine) {
            Some(rr) => {
                for metric in [Metric::Rms, Metric::Trms] {
                    let plot = CostPlot::from_report(rr, metric, PlotKind::WorstCase);
                    println!("{}", render_plot(&plot));
                    if let Some(fit) = fit_best(&plot.xy()) {
                        println!(
                            "  fitted growth vs {}: {} (r2 = {:.4})\n",
                            metric.label(),
                            fit.model.notation(),
                            fit.r2
                        );
                    }
                }
            }
            None => eprintln!("routine `{routine}` not found in the profile"),
        }
    }
    if let Some(cct) = cct {
        println!("hot calling contexts:");
        let mut table = Table::new(vec![
            "context".into(),
            "calls".into(),
            "cost".into(),
            "distinct trms".into(),
        ]);
        for ctx in cct.hottest(names).into_iter().take(opts.top) {
            table.row(vec![
                ctx.path,
                ctx.calls.to_string(),
                ctx.total_cost.to_string(),
                ctx.distinct_trms.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}

fn summary_table(report: &ProfileReport, limit: usize) -> Table {
    let mut routines: Vec<_> = report.routines.iter().collect();
    routines.sort_by_key(|r| std::cmp::Reverse(r.merged.total_cost));
    let mut table = Table::new(vec![
        "routine".into(),
        "calls".into(),
        "cost".into(),
        "|trms|".into(),
        "|rms|".into(),
        "richness".into(),
        "volume".into(),
        "thr%".into(),
        "ext%".into(),
    ]);
    for r in routines.iter().take(limit) {
        let (thr, ext) = r.induced_fractions();
        table.row(vec![
            r.name.clone(),
            r.merged.calls.to_string(),
            r.merged.total_cost.to_string(),
            r.distinct_trms().to_string(),
            r.distinct_rms().to_string(),
            format!("{:.2}", r.profile_richness()),
            format!("{:.3}", r.input_volume()),
            format!("{:.1}", 100.0 * thr),
            format!("{:.1}", 100.0 * ext),
        ]);
    }
    table
}

fn print_summary(report: &ProfileReport, opts: &Opts) {
    println!("{}", summary_table(report, opts.top).render());
    if let Some(path) = &opts.csv {
        let csv = summary_table(report, usize::MAX).to_csv();
        match std::fs::write(path, csv) {
            Ok(()) => println!("wrote routine summary to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    let g = &report.global;
    let (tp, ep) = g.induced_split();
    println!(
        "{} activations, {} reads ({} induced: {:.1}% thread, {:.1}% external), \
         {} renumberings, {} shadow bytes\n",
        g.activations,
        g.reads,
        g.induced_thread + g.induced_external,
        tp,
        ep,
        g.renumberings,
        g.shadow_bytes
    );
}
