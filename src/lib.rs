//! # aprof-rs — input-sensitive profiling
//!
//! A Rust reproduction of the input-sensitive profiling methodology of
//! Coppa, Demetrescu and Finocchi (PLDI 2012) and its multithreaded
//! extension: per-routine *cost-versus-input-size* profiles computed from a
//! single run, with the input size of every routine activation measured
//! automatically via the **read memory size** (rms) and **threaded read
//! memory size** (trms) metrics.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — events, ids, traces, and the [`trace::Tool`] callback trait.
//! * [`shadow`] — three-level shadow memories.
//! * [`core`] — the rms/trms profilers (the paper's contribution).
//! * [`vm`] — the instrumented guest machine (the Valgrind substitute).
//! * [`tools`] — comparator analysis tools (nulgrind/memcheck/callgrind/helgrind analogs).
//! * [`workloads`] — benchmark guest programs.
//! * [`analysis`] — cost plots, curve fitting, richness/volume metrics.
//! * [`mod@bench`] — the experiment harness and its parallel measurement driver.
//! * [`wire`] — the chunked binary trace format (streaming capture,
//!   O(chunk)-memory replay).
//! * [`check`] — the static verifier and lint pass over guest IR.
//! * [`bound`] — static symbolic cost-bound inference (loop trip
//!   classification, recursion size-change analysis) and the
//!   static-vs-dynamic growth differential.
//! * [`obs`] — profiler self-metrics: counters, tracing spans, `obs.json`.
//! * [`faults`] — seeded, replayable fault injection for robustness tests.
//! * [`corpus`] — the fuzzed CFG corpus: seeded program generation, five
//!   differential oracles, and shrinking of failures to minimal programs.
//! * [`serve`] — the multi-tenant streaming profiling service daemon
//!   (`aprof-cli serve` / `submit`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use aprof_analysis as analysis;
pub use aprof_obs as obs;
pub use aprof_bench as bench;
pub use aprof_bound as bound;
pub use aprof_check as check;
pub use aprof_core as core;
pub use aprof_corpus as corpus;
pub use aprof_faults as faults;
pub use aprof_serve as serve;
pub use aprof_shadow as shadow;
pub use aprof_tools as tools;
pub use aprof_trace as trace;
pub use aprof_vm as vm;
pub use aprof_wire as wire;
pub use aprof_workloads as workloads;
