//! Quickstart: write a guest program, profile it, read the cost curve.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The guest program calls `sum_range(n)` for growing `n`; the profiler
//! measures the input size of every activation automatically (no
//! instrumentation of the guest source is needed) and the fitted growth
//! model comes out linear.

use aprof::analysis::{fit_best, CostPlot, Metric, PlotKind};
use aprof::core::TrmsProfiler;
use aprof::vm::{asm, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A guest program in the textual assembly: main calls sum_range with
    // n = 8, 16, ..., 128; sum_range reads n cells of a shared array.
    let program = asm::parse(
        r#"
func main() {
entry:
    r0 = const 128
    r1 = alloc r0            # the array
    r2 = const 0             # i
    jmp fill
fill:
    r3 = clt r2, r0
    br r3, fill_body, sizes
fill_body:
    r4 = add r1, r2
    store r2, r4, 0
    r5 = const 1
    r2 = add r2, r5
    jmp fill
sizes:
    r2 = const 8             # n
    jmp loop
loop:
    r3 = cle r2, r0
    br r3, body, done
body:
    r6 = call sum_range(r1, r2)
    r7 = const 2
    r2 = mul r2, r7
    jmp loop
done:
    ret
}

func sum_range(2) {
entry:
    r2 = const 0             # acc
    r3 = const 0             # i
    jmp head
head:
    r4 = clt r3, r1
    br r4, body, out
body:
    r5 = add r0, r3
    r6 = load r5, 0
    r2 = add r2, r6
    r7 = const 1
    r3 = add r3, r7
    jmp head
out:
    ret r2
}
"#,
    )?;

    let names = program.routines().clone();
    let mut machine = Machine::new(program);
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler)?;
    let report = profiler.into_report(&names);

    let sum_range = report.routine_by_name("sum_range").expect("profiled routine");
    println!(
        "sum_range: {} activations, {} distinct input sizes",
        sum_range.merged.calls,
        sum_range.distinct_trms()
    );

    let plot = CostPlot::from_report(sum_range, Metric::Trms, PlotKind::WorstCase);
    println!("{}", aprof::analysis::render::render_plot(&plot));
    if let Some(fit) = fit_best(&plot.xy()) {
        println!("estimated growth: {} (r2 = {:.4})", fit.model.notation(), fit.r2);
    }
    Ok(())
}
