//! The Fig. 4 case study on the minidb workload: a spurious asymptotic
//! bottleneck that exists only under the rms metric.
//!
//! ```text
//! cargo run --example database_scan
//! ```
//!
//! `mysql_select` scans tables of growing size through a reused I/O buffer.
//! Under the rms its input size barely grows (the buffer is the same), so
//! the cost plot looks quadratic; under the trms every kernel refill counts
//! and the plot is linear — no bottleneck exists.

use aprof::analysis::{fit_best, CostPlot, Metric, PlotKind};
use aprof::core::TrmsProfiler;
use aprof::workloads::{by_name, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = by_name("mysqld").expect("registered workload");
    let mut machine = wl.build(&WorkloadParams::new(160, 2));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::new();
    machine.run_with(&mut profiler)?;
    let report = profiler.into_report(&names);

    let select = report.routine_by_name("mysql_select").expect("mysql_select");
    for metric in [Metric::Rms, Metric::Trms] {
        let plot = CostPlot::from_report(select, metric, PlotKind::WorstCase);
        println!("{}", aprof::analysis::render::render_plot(&plot));
        match fit_best(&plot.xy()) {
            Some(fit) => println!(
                "  fitted growth vs {}: {} (r2 = {:.4}) — {}",
                metric.label(),
                fit.model.notation(),
                fit.r2,
                if fit.model.is_superlinear() {
                    "an apparent asymptotic bottleneck"
                } else {
                    "scales fine"
                }
            ),
            None => println!("  not enough points to fit"),
        }
        println!();
    }

    let (thread_pct, ext_pct) = report.global.induced_split();
    println!("induced input split: {thread_pct:.1}% thread-induced, {ext_pct:.1}% external");
    Ok(())
}
