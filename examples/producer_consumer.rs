//! The paper's Fig. 2 case study: why plain rms misreads communicating
//! threads, and how the trms fixes it.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```
//!
//! A producer thread writes `n` values into one shared cell; a consumer
//! thread reads each one. The consumer clearly processes `n` input values,
//! but all its reads hit the *same* memory cell, so the classic read memory
//! size reports an input of 1. The threaded read memory size classifies
//! each re-read after the producer's write as an induced first-access and
//! reports `n`.

use aprof::core::TrmsProfiler;
use aprof::workloads::{by_name, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in [10u64, 100, 1000] {
        let wl = by_name("producer_consumer").expect("registered workload");
        let mut machine = wl.build(&WorkloadParams::new(n, 2));
        let names = machine.program().routines().clone();
        let mut profiler = TrmsProfiler::new();
        machine.run_with(&mut profiler)?;
        let report = profiler.into_report(&names);
        let consumer = report.routine_by_name("consumer").expect("consumer routine");
        let trms = consumer.trms_curve()[0].0;
        let rms = consumer.rms_curve()[0].0;
        println!(
            "n = {n:5}: consumer rms = {rms} (blind to thread input), trms = {trms}"
        );
        assert_eq!(rms, 1);
        assert_eq!(trms, n);
    }
    println!("\nthe consumer's input scales with n — only the trms sees it");
    Ok(())
}
