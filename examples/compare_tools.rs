//! Run one workload under every analysis tool of the suite and compare
//! results and costs — a miniature Table 1.
//!
//! ```text
//! cargo run --release --example compare_tools [workload] [size] [threads]
//! ```

use aprof::core::{RmsProfiler, TrmsProfiler};
use aprof::tools::{CallgrindTool, HelgrindTool, MemcheckTool, NullTool};
use aprof::workloads::{by_name, WorkloadParams};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("350.md");
    let size: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(96);
    let threads: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let wl = by_name(name).ok_or_else(|| {
        format!(
            "unknown workload `{name}`; try one of: {}",
            aprof::workloads::all().iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
        )
    })?;
    let params = WorkloadParams::new(size, threads);
    println!("workload {name} (size {size}, {threads} worker threads)\n");

    let t0 = Instant::now();
    let native = wl.build(&params).run_native()?;
    let native_s = t0.elapsed().as_secs_f64();
    println!(
        "native     : {:>8.2?} ms, {} basic blocks, {} switches",
        native_s * 1e3,
        native.total_blocks,
        native.switches
    );

    let timed = |label: &str, f: &mut dyn FnMut() -> String| {
        let t = Instant::now();
        let summary = f();
        println!(
            "{label:<11}: {:>8.2?} ms ({:.1}x) — {summary}",
            t.elapsed().as_secs_f64() * 1e3,
            t.elapsed().as_secs_f64() / native_s.max(1e-9),
        );
    };

    timed("nulgrind", &mut || {
        let mut tool = NullTool::new();
        wl.build(&params).run_with(&mut tool).expect("runs");
        "no analysis".to_owned()
    });
    timed("memcheck", &mut || {
        let mut tool = MemcheckTool::new();
        wl.build(&params).run_with(&mut tool).expect("runs");
        let r = tool.report();
        format!("{} undefined reads in {} cells", r.undefined_reads, r.distinct_cells)
    });
    timed("callgrind", &mut || {
        let mut machine = wl.build(&params);
        let names = machine.program().routines().clone();
        let mut tool = CallgrindTool::new();
        machine.run_with(&mut tool).expect("runs");
        let report = tool.into_report(&names);
        let (hot, costs) = report.hottest()[0];
        format!("hottest routine {hot} ({} inclusive blocks)", costs.inclusive)
    });
    timed("helgrind", &mut || {
        let mut tool = HelgrindTool::new();
        wl.build(&params).run_with(&mut tool).expect("runs");
        let r = tool.report();
        format!("{} races on {} cells", r.races, r.racy_cells)
    });
    timed("aprof-rms", &mut || {
        let mut machine = wl.build(&params);
        let names = machine.program().routines().clone();
        let mut tool = RmsProfiler::new();
        machine.run_with(&mut tool).expect("runs");
        let report = tool.into_report(&names);
        format!("{} routines profiled", report.routines.len())
    });
    timed("aprof-trms", &mut || {
        let mut machine = wl.build(&params);
        let names = machine.program().routines().clone();
        let mut tool = TrmsProfiler::new();
        machine.run_with(&mut tool).expect("runs");
        let report = tool.into_report(&names);
        let (t, e) = report.global.induced_split();
        format!(
            "{} routines; induced input {t:.0}% thread / {e:.0}% external",
            report.routines.len()
        )
    });
    Ok(())
}
