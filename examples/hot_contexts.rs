//! Calling-context-sensitive profiling and automatic bottleneck detection
//! (extensions beyond the paper's flat per-routine profiles).
//!
//! ```text
//! cargo run --example hot_contexts
//! ```
//!
//! The same routine called from different sites can have completely
//! different input-size behaviour; the CCT keeps those apart. The
//! bottleneck analyzer then classifies every routine: genuinely
//! superlinear, spuriously superlinear only under rms, hidden from rms, or
//! scalable.

use aprof::analysis::bottleneck;
use aprof::core::TrmsProfiler;
use aprof::workloads::{by_name, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = by_name("mysqld").expect("registered workload");
    let mut machine = wl.build(&WorkloadParams::new(160, 3));
    let names = machine.program().routines().clone();
    let mut profiler = TrmsProfiler::builder().calling_contexts(true).build();
    machine.run_with(&mut profiler)?;
    let (report, cct) = profiler.into_report_and_cct(&names);
    let cct = cct.expect("cct enabled");

    println!("hot calling contexts (by inclusive cost):");
    for ctx in cct.hottest(&names).into_iter().take(8) {
        println!(
            "  {:>10} blocks  {:>4} calls  {:>3} sizes  {}",
            ctx.total_cost, ctx.calls, ctx.distinct_trms, ctx.path
        );
    }

    println!("\nasymptotic bottleneck analysis:");
    let entries = bottleneck::analyze(&report);
    print!("{}", bottleneck::render(&entries, 8));

    let flagged: Vec<_> = entries
        .iter()
        .filter(|e| {
            matches!(e.verdict, bottleneck::Verdict::Bottleneck | bottleneck::Verdict::HiddenFromRms)
        })
        .map(|e| e.routine.as_str())
        .collect();
    println!("\nroutines needing attention: {}", flagged.join(", "));
    Ok(())
}
