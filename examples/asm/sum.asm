# Sum the first n naturals — the smallest interesting guest program.
# `aprof-cli check examples/asm/sum.asm` verifies it; `aprof-cli asm`
# runs it under the profiler.

func main() regs=4 {
entry:
    r0 = const 10
    r1 = call sum(r0)
    ret r1
}

func sum(1) regs=4 {
entry:
    r1 = const 0          # acc
    r2 = const 0          # i
    jmp head
head:
    r3 = clt r2, r0
    br r3, body, exit
body:
    r1 = add r1, r2
    r3 = const 1
    r2 = add r2, r3
    jmp head
exit:
    ret r1
}
