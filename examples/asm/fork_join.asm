# Fork/join with per-thread output slots: each worker writes its own
# cell, the parent joins both before summing. The verifier's fork/join
# pairing sees both handles joined; the lockset pass still notes the
# slots as static race candidates (it has no happens-before reasoning
# for join), which is why N2xx findings are notes, not warnings.

func main() regs=8 {
entry:
    r0 = const 200
    r1 = spawn worker(r0)
    r2 = const 201
    r3 = spawn worker(r2)
    join r1
    join r3
    r4 = load r0, 0
    r5 = load r2, 0
    r6 = add r4, r5
    ret r6
}

func worker(1) regs=3 {
entry:
    r1 = const 7
    r2 = mul r0, r1
    store r2, r0, 0
    ret
}
