# Two threads bump a shared counter (cell 100) under lock 9.
# The static lockset pass sees a consistent lockset on every access,
# so `aprof-cli check --races` reports no race candidates.

func main() regs=4 {
entry:
    r0 = spawn worker()
    call bump()
    join r0
    r3 = const 9
    acquire r3
    r1 = const 100
    r2 = load r1, 0
    release r3
    ret r2
}

func worker() regs=1 {
entry:
    call bump()
    ret
}

func bump() regs=4 {
entry:
    r0 = const 9
    acquire r0
    r1 = const 100
    r2 = load r1, 0
    r3 = const 1
    r2 = add r2, r3
    store r2, r1, 0
    release r0
    ret
}
